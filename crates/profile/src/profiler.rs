//! The [`Profiler`] collector: per-hart, per-pc issue and stall histograms.
//!
//! The accounting identity mirrors the simulator's own: on the **core
//! dimension**, every non-halted cycle of a hart is either an issue
//! ([`Lane::Int`] or [`Lane::FpCore`]) or a stall with one of the ten core
//! causes — taken branches pre-charge their whole refill penalty at issue
//! time, exactly as `Stats::stall_branch` counts it. The **sequencer
//! dimension** ([`Lane::FpSeq`] issues and the three `Fpu*` causes) runs
//! concurrently with the core's and is kept in the same per-pc arrays but
//! never mixed into core-cycle totals. Totals therefore cross-check against
//! `Stats` counter-for-counter.

use snitch_asm::layout;
use snitch_trace::{Lane, StallCause};

/// Number of stall causes ([`StallCause::all`]).
pub const NUM_CAUSES: usize = 13;

/// Index of a cause in the per-pc stall arrays, in [`StallCause::all`]
/// order.
#[must_use]
pub fn cause_index(cause: StallCause) -> usize {
    match cause {
        StallCause::IntRaw => 0,
        StallCause::WbPort => 1,
        StallCause::OffloadFull => 2,
        StallCause::FpPending => 3,
        StallCause::SsrCfg => 4,
        StallCause::Fence => 5,
        StallCause::Branch => 6,
        StallCause::TcdmConflict => 7,
        StallCause::StoreOrder => 8,
        StallCause::Barrier => 9,
        StallCause::FpuRaw => 10,
        StallCause::FpuSsr => 11,
        StallCause::FpuTcdm => 12,
    }
}

/// One hart's histograms, indexed by instruction index (pc-relative).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct HartProfile {
    /// Core-slot integer issues per pc.
    issued_int: Vec<u64>,
    /// Core-slot FP offload pushes per pc.
    issued_fp_core: Vec<u64>,
    /// Sequencer (FREP replay) issues per pc.
    issued_fp_seq: Vec<u64>,
    /// Stall cycles per pc and cause: `[idx * NUM_CAUSES + cause]`.
    stalls: Vec<u64>,
}

/// The cycle-profile collector and result.
///
/// Attach one to a cluster (`Cluster::attach_profiler`) before loading a
/// program; the load sizes the arrays to the text section. A *paused*
/// profiler ([`Profiler::paused`]) keeps every hook branch live but records
/// nothing — the worst case the bench overhead guard measures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Profiler {
    recording: bool,
    text_len: usize,
    harts: Vec<HartProfile>,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// A recording profiler (arrays are sized at program load).
    #[must_use]
    pub fn new() -> Self {
        Profiler { recording: true, text_len: 0, harts: Vec::new() }
    }

    /// A profiler whose hooks run but record nothing.
    #[must_use]
    pub fn paused() -> Self {
        Profiler { recording: false, ..Profiler::new() }
    }

    /// Whether charges are being recorded.
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.recording
    }

    /// Sizes (and zeroes) the histograms for `harts` harts over a text
    /// section of `text_len` instructions.
    pub fn size(&mut self, harts: usize, text_len: usize) {
        self.text_len = text_len;
        self.harts.clear();
        self.harts.resize_with(harts, || HartProfile {
            issued_int: vec![0; text_len],
            issued_fp_core: vec![0; text_len],
            issued_fp_seq: vec![0; text_len],
            stalls: vec![0; text_len * NUM_CAUSES],
        });
    }

    /// Number of harts profiled.
    #[must_use]
    pub fn harts(&self) -> usize {
        self.harts.len()
    }

    /// Instructions in the profiled text section.
    #[must_use]
    pub fn text_len(&self) -> usize {
        self.text_len
    }

    #[inline]
    fn idx(pc: u32) -> usize {
        (pc.wrapping_sub(layout::TEXT_BASE) / 4) as usize
    }

    /// Charges one issue slot at `pc` to `hart`.
    #[inline]
    pub fn issue(&mut self, hart: usize, pc: u32, lane: Lane) {
        if !self.recording {
            return;
        }
        let idx = Self::idx(pc);
        if let Some(h) = self.harts.get_mut(hart) {
            let counts = match lane {
                Lane::Int => &mut h.issued_int,
                Lane::FpCore => &mut h.issued_fp_core,
                Lane::FpSeq => &mut h.issued_fp_seq,
            };
            if let Some(c) = counts.get_mut(idx) {
                *c += 1;
            }
        }
    }

    /// Charges `cycles` stall cycles at the blocking instruction `pc`.
    #[inline]
    pub fn stall(&mut self, hart: usize, pc: u32, cause: StallCause, cycles: u64) {
        if !self.recording {
            return;
        }
        let idx = Self::idx(pc) * NUM_CAUSES + cause_index(cause);
        if let Some(c) = self.harts.get_mut(hart).and_then(|h| h.stalls.get_mut(idx)) {
            *c += cycles;
        }
    }

    // ------------------------------------------------------------- queries

    /// Issue count of one lane at instruction index `idx`, summed over
    /// harts.
    #[must_use]
    pub fn issued_at(&self, idx: usize, lane: Lane) -> u64 {
        self.harts
            .iter()
            .map(|h| match lane {
                Lane::Int => &h.issued_int,
                Lane::FpCore => &h.issued_fp_core,
                Lane::FpSeq => &h.issued_fp_seq,
            })
            .filter_map(|v| v.get(idx))
            .sum()
    }

    /// Stall cycles of one cause at instruction index `idx`, summed over
    /// harts.
    #[must_use]
    pub fn stall_at(&self, idx: usize, cause: StallCause) -> u64 {
        let slot = idx * NUM_CAUSES + cause_index(cause);
        self.harts.iter().filter_map(|h| h.stalls.get(slot)).sum()
    }

    /// Total issues of one lane across every pc and hart.
    #[must_use]
    pub fn issued_total(&self, lane: Lane) -> u64 {
        (0..self.text_len).map(|i| self.issued_at(i, lane)).sum()
    }

    /// Total stall cycles of one cause across every pc and hart.
    #[must_use]
    pub fn stall_total(&self, cause: StallCause) -> u64 {
        (0..self.text_len).map(|i| self.stall_at(i, cause)).sum()
    }

    /// Core-dimension cycles charged at `idx`: core-slot issues plus the
    /// ten core-cause stalls. Per hart these partition its non-halted
    /// cycles, so this is the flamegraph weight.
    #[must_use]
    pub fn core_cycles_at(&self, idx: usize) -> u64 {
        let stalls: u64 = StallCause::core().iter().map(|&c| self.stall_at(idx, c)).sum();
        self.issued_at(idx, Lane::Int) + self.issued_at(idx, Lane::FpCore) + stalls
    }

    /// Sequencer-dimension cycles charged at `idx`: FREP replays plus the
    /// three FPU-side stall causes. Concurrent with the core dimension.
    #[must_use]
    pub fn seq_cycles_at(&self, idx: usize) -> u64 {
        let fpu: u64 = [StallCause::FpuRaw, StallCause::FpuSsr, StallCause::FpuTcdm]
            .iter()
            .map(|&c| self.stall_at(idx, c))
            .sum();
        self.issued_at(idx, Lane::FpSeq) + fpu
    }

    /// All core-dimension cycles charged anywhere.
    #[must_use]
    pub fn core_cycles_total(&self) -> u64 {
        (0..self.text_len).map(|i| self.core_cycles_at(i)).sum()
    }

    /// The dominant stall cause at `idx`, if any cycles stalled there.
    #[must_use]
    pub fn dominant_stall_at(&self, idx: usize) -> Option<(StallCause, u64)> {
        StallCause::all()
            .into_iter()
            .map(|c| (c, self.stall_at(idx, c)))
            .filter(|&(_, n)| n > 0)
            .max_by_key(|&(_, n)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: u32 = layout::TEXT_BASE;

    #[test]
    fn charges_accumulate_per_pc_and_cause() {
        let mut p = Profiler::new();
        p.size(2, 4);
        p.issue(0, BASE, Lane::Int);
        p.issue(0, BASE, Lane::Int);
        p.issue(1, BASE + 4, Lane::FpCore);
        p.issue(1, BASE + 8, Lane::FpSeq);
        p.stall(0, BASE + 4, StallCause::Branch, 3);
        p.stall(1, BASE + 4, StallCause::Branch, 1);
        p.stall(0, BASE + 12, StallCause::FpuSsr, 2);
        assert_eq!(p.issued_at(0, Lane::Int), 2);
        assert_eq!(p.issued_at(1, Lane::FpCore), 1);
        assert_eq!(p.stall_at(1, StallCause::Branch), 4);
        assert_eq!(p.stall_total(StallCause::Branch), 4);
        assert_eq!(p.issued_total(Lane::Int), 2);
        assert_eq!(p.core_cycles_at(1), 5, "fp-core issue + 4 branch cycles");
        assert_eq!(p.seq_cycles_at(2), 1);
        assert_eq!(p.seq_cycles_at(3), 2, "fpu stalls land on the sequencer dimension");
        assert_eq!(p.core_cycles_total(), 7);
        assert_eq!(p.dominant_stall_at(1), Some((StallCause::Branch, 4)));
        assert_eq!(p.dominant_stall_at(0), None);
    }

    #[test]
    fn paused_profiler_records_nothing() {
        let mut p = Profiler::paused();
        p.size(1, 2);
        assert!(!p.is_recording());
        p.issue(0, BASE, Lane::Int);
        p.stall(0, BASE, StallCause::Fence, 7);
        assert_eq!(p.core_cycles_total(), 0);
    }

    #[test]
    fn out_of_range_charges_are_ignored() {
        let mut p = Profiler::new();
        p.size(1, 2);
        p.issue(0, BASE + 64, Lane::Int); // past the text
        p.issue(5, BASE, Lane::Int); // no such hart
        p.stall(0, BASE.wrapping_sub(4), StallCause::Fence, 1); // below base
        assert_eq!(p.core_cycles_total(), 0);
    }

    #[test]
    fn cause_index_matches_taxonomy_order() {
        for (i, c) in StallCause::all().into_iter().enumerate() {
            assert_eq!(cause_index(c), i);
        }
    }
}
