//! Collapsed-stack flamegraph sink plus a dependency-free validator.
//!
//! One line per charged pc, in address order:
//!
//! ```text
//! body;0x80000040 12850
//! ```
//!
//! Frames are `region;pc` and the weight is the pc's core-dimension cycle
//! count — the format `flamegraph.pl`, `inferno` and speedscope all load.
//! Frames never contain spaces or semicolons, so the grammar below is
//! unambiguous.

use std::fmt::Write as _;

use snitch_asm::layout;

use crate::profiler::Profiler;
use crate::region::RegionMap;

/// Renders the collapsed-stack text. Byte-stable: pcs in address order,
/// fixed formatting.
#[must_use]
pub fn render(profile: &Profiler, map: &RegionMap) -> String {
    let mut out = String::new();
    for idx in 0..profile.text_len() {
        let weight = profile.core_cycles_at(idx);
        if weight == 0 {
            continue;
        }
        let pc = layout::TEXT_BASE + (idx as u32) * 4;
        let _ = writeln!(out, "{};{pc:#010x} {weight}", sanitize(map.region_of(pc)));
    }
    out
}

/// Replaces the separator characters of the collapsed format in a region
/// name (labels are free-form strings).
fn sanitize(name: &str) -> String {
    name.replace([';', ' '], "_")
}

/// Validates collapsed-stack text: every non-empty line must be
/// `stack weight` where `stack` is one-or-more `;`-separated non-empty
/// frames and `weight` a positive integer. Returns the number of stack
/// lines.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut lines = 0;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
        let (stack, weight) =
            line.rsplit_once(' ').ok_or_else(|| err("no space-separated weight"))?;
        if weight.is_empty() || !weight.bytes().all(|b| b.is_ascii_digit()) {
            return Err(err("weight is not an integer"));
        }
        if weight.parse::<u64>().map_err(|e| err(&e.to_string()))? == 0 {
            return Err(err("zero-weight stack"));
        }
        if stack.is_empty() || stack.split(';').any(|frame| frame.is_empty() || frame.contains(' '))
        {
            return Err(err("malformed stack frames"));
        }
        lines += 1;
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_asm::ProgramBuilder;
    use snitch_trace::{Lane, StallCause};

    #[test]
    fn rendered_flamegraph_validates() {
        let mut b = ProgramBuilder::new();
        b.label("body");
        b.nop();
        b.nop();
        let map = RegionMap::new(&b.build().unwrap());
        let mut p = Profiler::new();
        p.size(1, 2);
        p.issue(0, layout::TEXT_BASE, Lane::Int);
        p.stall(0, layout::TEXT_BASE, StallCause::Branch, 2);
        let text = render(&p, &map);
        assert_eq!(text, format!("body;{:#010x} 3\n", layout::TEXT_BASE));
        assert_eq!(validate(&text), Ok(1), "idle pcs are dropped");
    }

    #[test]
    fn validator_rejects_malformed_stacks() {
        assert!(validate("noweight").is_err());
        assert!(validate("a;b -3").is_err(), "negative weight");
        assert!(validate("a;b 0").is_err(), "zero weight");
        assert!(validate("a;;b 5").is_err(), "empty frame");
        assert!(validate("a b;c 5").is_err(), "space inside a frame");
        assert_eq!(validate("a;b 5\n\nc 1\n"), Ok(2), "blank lines are skipped");
    }

    #[test]
    fn region_names_are_sanitized() {
        assert_eq!(sanitize("a;b c"), "a_b_c");
    }
}
