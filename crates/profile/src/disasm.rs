//! Annotated-disassembly sink: the program listing with per-instruction
//! cycle and stall columns.
//!
//! ```text
//!   address       core  issue  stall cause            frep  instruction
//! body:
//!   0x80000040   12850  12850      0 -               12850  fmadd.d ft0, ft1, ft2, ft0
//! ```

use std::fmt::Write as _;

use snitch_asm::{layout, Program};
use snitch_trace::Lane;

use crate::profiler::Profiler;

/// Renders the annotated listing. Byte-stable: one line per instruction in
/// address order, labels interleaved at their span starts.
#[must_use]
pub fn render(profile: &Profiler, program: &Program) -> String {
    let mut out = String::with_capacity(program.text().len() * 80 + 64);
    out.push_str("  address       core  issue  stall cause            frep  instruction\n");
    for (idx, inst) in program.text().iter().enumerate() {
        let pc = layout::TEXT_BASE + (idx as u32) * 4;
        for l in program.labels().iter().filter(|l| l.start == pc) {
            let _ = writeln!(out, "{}:", l.name);
        }
        let issued = profile.issued_at(idx, Lane::Int) + profile.issued_at(idx, Lane::FpCore);
        let core = profile.core_cycles_at(idx);
        let cause = profile
            .dominant_stall_at(idx)
            .map_or_else(|| "-".to_string(), |(c, _)| c.name().to_string());
        let _ = writeln!(
            out,
            "  {pc:#010x} {core:>7} {issued:>6} {:>6} {cause:<14} {:>6}  {inst}",
            core - issued,
            profile.seq_cycles_at(idx),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_asm::ProgramBuilder;
    use snitch_trace::StallCause;

    #[test]
    fn listing_carries_labels_cycles_and_causes() {
        let mut b = ProgramBuilder::new();
        b.label("body");
        b.nop();
        b.ecall();
        let program = b.build().unwrap();
        let mut p = Profiler::new();
        p.size(1, 2);
        p.issue(0, layout::TEXT_BASE, Lane::Int);
        p.stall(0, layout::TEXT_BASE, StallCause::TcdmConflict, 4);
        let text = render(&p, &program);
        assert!(text.contains("body:"));
        assert!(text.contains("tcdm_conflict"));
        assert!(text.contains("ecall"));
        let nop_line = text.lines().find(|l| l.contains("0x80000000")).unwrap();
        assert!(nop_line.contains(" 5 "), "core cycles column: 1 issue + 4 stalls: {nop_line}");
        // Unprofiled instructions render with zero columns and no cause.
        let ecall_line = text.lines().find(|l| l.ends_with("ecall")).unwrap();
        assert!(ecall_line.contains(" - "), "{ecall_line}");
    }
}
