//! Resolving program counters to named program regions.
//!
//! A region is a `ProgramBuilder` label span ([`Program::labels`]): the
//! COPIFT code generator places the standard `prologue`/`spill`/`body`/
//! `reduce` labels on every generated program, and hand-written kernels get
//! whatever labels they placed. Instructions before the first label map to
//! the synthetic region `_entry`.

use snitch_asm::program::LabelSpan;
use snitch_asm::Program;

/// Region before the first label (or for a program with no labels at all).
pub const ENTRY_REGION: &str = "_entry";

/// Sorted pc-to-region lookup over a program's label spans.
///
/// Where several labels share an address, the first in `(address, name)`
/// order names the region — deterministic, so every sink built on the map
/// is byte-stable.
#[derive(Clone, Debug)]
pub struct RegionMap {
    spans: Vec<LabelSpan>,
}

impl RegionMap {
    /// Builds the map from a program's resolved labels.
    #[must_use]
    pub fn new(program: &Program) -> Self {
        // Program::labels is ordered by (start, name); keep one span per
        // distinct start address.
        let mut spans: Vec<LabelSpan> = Vec::new();
        for l in program.labels() {
            if spans.last().is_none_or(|prev| prev.start != l.start) && l.start != l.end {
                spans.push(l.clone());
            }
        }
        RegionMap { spans }
    }

    /// The regions in address order (one per distinct span).
    #[must_use]
    pub fn spans(&self) -> &[LabelSpan] {
        &self.spans
    }

    /// The region name covering `pc` ([`ENTRY_REGION`] before the first
    /// label).
    #[must_use]
    pub fn region_of(&self, pc: u32) -> &str {
        let i = self.spans.partition_point(|s| s.start <= pc);
        match i.checked_sub(1).map(|i| &self.spans[i]) {
            Some(span) if span.contains(pc) => &span.name,
            _ => ENTRY_REGION,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_asm::{layout, ProgramBuilder};
    use snitch_riscv::reg::IntReg;

    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::A0, 1); // before any label
        b.label("prologue");
        b.nop();
        b.nop();
        b.label("body");
        b.nop();
        b.label("reduce");
        b.ecall();
        b.build().unwrap()
    }

    #[test]
    fn pcs_resolve_to_their_regions() {
        let map = RegionMap::new(&program());
        let base = layout::TEXT_BASE;
        assert_eq!(map.region_of(base), ENTRY_REGION);
        assert_eq!(map.region_of(base + 4), "prologue");
        assert_eq!(map.region_of(base + 8), "prologue");
        assert_eq!(map.region_of(base + 12), "body");
        assert_eq!(map.region_of(base + 16), "reduce");
        assert_eq!(map.region_of(base + 20), ENTRY_REGION, "past the text");
        assert_eq!(map.spans().len(), 3);
    }

    #[test]
    fn unlabeled_program_maps_everything_to_entry() {
        let mut b = ProgramBuilder::new();
        b.ecall();
        let map = RegionMap::new(&b.build().unwrap());
        assert_eq!(map.region_of(layout::TEXT_BASE), ENTRY_REGION);
        assert!(map.spans().is_empty());
    }
}
