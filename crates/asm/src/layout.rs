//! The cluster memory map shared by the assembler and the simulator.
//!
//! Mirrors the Snitch cluster's address-space split: instruction memory,
//! tightly-coupled data memory (TCDM, the L1 scratchpad) and an external
//! main-memory region reachable by the DMA engine and (slowly) by the core.

/// Base address of instruction memory.
pub const TEXT_BASE: u32 = 0x8000_0000;

/// Base address of the TCDM (L1 scratchpad).
pub const TCDM_BASE: u32 = 0x1000_0000;

/// TCDM capacity in bytes (128 KiB, as in the Snitch cluster used by the
/// paper).
pub const TCDM_SIZE: u32 = 128 * 1024;

/// Base address of external main memory.
pub const MAIN_BASE: u32 = 0xC000_0000;

/// Main-memory capacity in bytes modelled by the simulator.
pub const MAIN_SIZE: u32 = 16 * 1024 * 1024;

/// Whether `addr` falls inside the TCDM.
#[must_use]
pub fn is_tcdm(addr: u32) -> bool {
    (TCDM_BASE..TCDM_BASE + TCDM_SIZE).contains(&addr)
}

/// Whether `addr` falls inside main memory.
#[must_use]
pub fn is_main(addr: u32) -> bool {
    (MAIN_BASE..MAIN_BASE + MAIN_SIZE).contains(&addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint() {
        assert!(is_tcdm(TCDM_BASE));
        assert!(is_tcdm(TCDM_BASE + TCDM_SIZE - 1));
        assert!(!is_tcdm(TCDM_BASE + TCDM_SIZE));
        assert!(is_main(MAIN_BASE));
        assert!(!is_main(TCDM_BASE));
        assert!(!is_tcdm(MAIN_BASE));
        assert!(!is_tcdm(TEXT_BASE));
    }
}
