//! The system memory map shared by the assembler and the simulator.
//!
//! Mirrors the address-space split of a multi-cluster Snitch system
//! (Occamy-style): instruction memory, the per-cluster tightly-coupled data
//! memory (TCDM, the L1 scratchpad), a shared L2 region behind the cluster
//! interconnect, per-cluster TCDM alias windows for inter-cluster traffic,
//! and an external main-memory region reachable by the DMA engine and
//! (slowly) by the core.

/// Base address of instruction memory.
pub const TEXT_BASE: u32 = 0x8000_0000;

/// Base address of the TCDM (L1 scratchpad). Every cluster sees its *own*
/// TCDM at this address; a specific cluster's TCDM is addressable from
/// anywhere through its alias window (see [`tcdm_alias_base`]).
pub const TCDM_BASE: u32 = 0x1000_0000;

/// TCDM capacity in bytes (128 KiB, as in the Snitch cluster used by the
/// paper).
pub const TCDM_SIZE: u32 = 128 * 1024;

/// Base address of the shared L2 memory region (behind the cluster
/// interconnect; same contents visible from every cluster).
pub const L2_BASE: u32 = 0x2000_0000;

/// L2 capacity in bytes modelled by the simulator.
pub const L2_SIZE: u32 = 4 * 1024 * 1024;

/// Base of the per-cluster TCDM alias windows: cluster `k`'s TCDM appears
/// at `CLUSTER_ALIAS_BASE + k * CLUSTER_ALIAS_STRIDE` from every cluster
/// (including `k` itself), which is how inter-cluster DMA names a remote
/// scratchpad.
pub const CLUSTER_ALIAS_BASE: u32 = 0x4000_0000;

/// Address stride between consecutive clusters' alias windows (only the
/// first [`TCDM_SIZE`] bytes of each window are backed).
pub const CLUSTER_ALIAS_STRIDE: u32 = 0x0010_0000;

/// Largest cluster count the alias window carves room for (matches the
/// simulator's per-cluster core limit).
pub const MAX_CLUSTERS: usize = 32;

/// Base address of external main memory.
pub const MAIN_BASE: u32 = 0xC000_0000;

/// Main-memory capacity in bytes modelled by the simulator.
pub const MAIN_SIZE: u32 = 16 * 1024 * 1024;

/// Whether `addr` falls inside the (cluster-local) TCDM.
#[must_use]
pub fn is_tcdm(addr: u32) -> bool {
    (TCDM_BASE..TCDM_BASE + TCDM_SIZE).contains(&addr)
}

/// Whether `addr` falls inside the shared L2 region.
#[must_use]
pub fn is_l2(addr: u32) -> bool {
    (L2_BASE..L2_BASE + L2_SIZE).contains(&addr)
}

/// Whether `addr` falls inside main memory.
#[must_use]
pub fn is_main(addr: u32) -> bool {
    (MAIN_BASE..MAIN_BASE + MAIN_SIZE).contains(&addr)
}

/// Base address of cluster `k`'s TCDM alias window.
///
/// # Panics
///
/// Panics if `cluster >= MAX_CLUSTERS`.
#[must_use]
pub fn tcdm_alias_base(cluster: usize) -> u32 {
    assert!(cluster < MAX_CLUSTERS, "cluster {cluster} out of range");
    CLUSTER_ALIAS_BASE + cluster as u32 * CLUSTER_ALIAS_STRIDE
}

/// Decodes an address inside some cluster's TCDM alias window into
/// `(cluster, offset_into_tcdm)`; `None` for any other address.
#[must_use]
pub fn alias_cluster(addr: u32) -> Option<(usize, u32)> {
    let span = CLUSTER_ALIAS_STRIDE * MAX_CLUSTERS as u32;
    if !(CLUSTER_ALIAS_BASE..CLUSTER_ALIAS_BASE + span).contains(&addr) {
        return None;
    }
    let rel = addr - CLUSTER_ALIAS_BASE;
    let cluster = (rel / CLUSTER_ALIAS_STRIDE) as usize;
    let offset = rel % CLUSTER_ALIAS_STRIDE;
    (offset < TCDM_SIZE).then_some((cluster, offset))
}

/// Whether `addr` falls inside the backed part of any cluster's TCDM alias
/// window.
#[must_use]
pub fn is_cluster_alias(addr: u32) -> bool {
    alias_cluster(addr).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint() {
        assert!(is_tcdm(TCDM_BASE));
        assert!(is_tcdm(TCDM_BASE + TCDM_SIZE - 1));
        assert!(!is_tcdm(TCDM_BASE + TCDM_SIZE));
        assert!(is_main(MAIN_BASE));
        assert!(!is_main(TCDM_BASE));
        assert!(!is_tcdm(MAIN_BASE));
        assert!(!is_tcdm(TEXT_BASE));
        assert!(is_l2(L2_BASE) && is_l2(L2_BASE + L2_SIZE - 1) && !is_l2(L2_BASE + L2_SIZE));
        assert!(!is_tcdm(L2_BASE) && !is_main(L2_BASE) && !is_cluster_alias(L2_BASE));
        assert!(!is_l2(TCDM_BASE) && !is_l2(MAIN_BASE) && !is_l2(CLUSTER_ALIAS_BASE));
    }

    #[test]
    fn alias_windows_decode_per_cluster() {
        assert_eq!(alias_cluster(CLUSTER_ALIAS_BASE), Some((0, 0)));
        assert_eq!(alias_cluster(tcdm_alias_base(3) + 64), Some((3, 64)));
        assert_eq!(
            alias_cluster(tcdm_alias_base(MAX_CLUSTERS - 1) + TCDM_SIZE - 1),
            Some((MAX_CLUSTERS - 1, TCDM_SIZE - 1))
        );
        // Only the first TCDM_SIZE bytes of a window are backed.
        assert_eq!(alias_cluster(tcdm_alias_base(1) + TCDM_SIZE), None);
        // Outside the alias span entirely.
        assert_eq!(alias_cluster(TCDM_BASE), None);
        assert_eq!(alias_cluster(CLUSTER_ALIAS_BASE + CLUSTER_ALIAS_STRIDE * 32), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn alias_base_rejects_out_of_range_cluster() {
        let _ = tcdm_alias_base(MAX_CLUSTERS);
    }
}
