//! Typed assembler for the Snitch/COPIFT instruction set.
//!
//! The paper's kernels are "optimized mixed C and assembly"; this crate is
//! the equivalent authoring layer for the reproduction: a
//! [`ProgramBuilder`] with one method per mnemonic,
//! labels with forward references, `li`/`la`/`mv`-style pseudo-instructions,
//! and data allocation in both the TCDM scratchpad and main memory.
//!
//! # Example
//!
//! ```
//! use snitch_asm::builder::ProgramBuilder;
//! use snitch_riscv::reg::IntReg;
//!
//! let mut b = ProgramBuilder::new();
//! b.li(IntReg::A0, 10);
//! b.li(IntReg::A1, 0);
//! b.label("loop");
//! b.add(IntReg::A1, IntReg::A1, IntReg::A0);
//! b.addi(IntReg::A0, IntReg::A0, -1);
//! b.bnez(IntReg::A0, "loop");
//! b.ecall();
//! let program = b.build()?;
//! assert!(program.text().len() >= 6);
//! # Ok::<(), snitch_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]

pub mod builder;
pub mod layout;
pub mod program;

pub use builder::{AsmError, ProgramBuilder};
pub use program::{LabelSpan, Program};
