//! The program builder: one method per mnemonic, labels, pseudo-instructions
//! and data allocation.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use snitch_riscv::csr::{
    SsrCfgWord, CSR_BARRIER, CSR_CLUSTER_ID, CSR_FPU_FENCE, CSR_MHARTID, CSR_SSR,
};
use snitch_riscv::inst::Inst;
use snitch_riscv::ops::{
    AluImmOp, AluOp, BranchOp, CsrOp, DmaOp, FmaOp, FpAluOp, FpCmpOp, FpFmt, IntCvt, LoadOp,
    SgnjOp, StoreOp,
};
use snitch_riscv::reg::{FpReg, IntReg};

use crate::layout;
use crate::program::Program;

/// Error produced when finalizing a program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A branch or jump references a label that was never placed.
    UndefinedLabel(String),
    /// The same label was placed twice.
    DuplicateLabel(String),
    /// A resolved branch offset does not fit its immediate field.
    BranchOutOfRange { label: String, offset: i64 },
    /// The TCDM data image exceeds the scratchpad capacity.
    TcdmOverflow { required: usize },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::BranchOutOfRange { label, offset } => {
                write!(f, "branch to `{label}` out of range (offset {offset})")
            }
            AsmError::TcdmOverflow { required } => {
                write!(f, "tcdm image of {required} bytes exceeds capacity")
            }
        }
    }
}

impl Error for AsmError {}

#[derive(Clone, Copy, Debug)]
enum FixKind {
    Branch,
    Jal,
}

/// Incrementally builds a [`Program`].
///
/// Data should be allocated before the code that references it (symbol
/// addresses are resolved eagerly by [`ProgramBuilder::la`]).
///
/// # Example
///
/// ```
/// use snitch_asm::builder::ProgramBuilder;
/// use snitch_riscv::reg::{FpReg, IntReg};
///
/// let mut b = ProgramBuilder::new();
/// let xs = b.tcdm_f64("xs", &[1.0, 2.0, 3.0]);
/// b.li(IntReg::A0, xs as i32);
/// b.fld(FpReg::FA0, IntReg::A0, 0);
/// b.ecall();
/// let p = b.build()?;
/// assert_eq!(p.symbol("xs"), Some(xs));
/// # Ok::<(), snitch_asm::AsmError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    fixups: Vec<(usize, String, FixKind)>,
    labels: HashMap<String, usize>,
    tcdm: Vec<u8>,
    l2: Vec<u8>,
    main: Vec<u8>,
    symbols: HashMap<String, u32>,
    parallel: bool,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether no instructions have been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Remaining TCDM capacity in bytes.
    #[must_use]
    pub fn tcdm_remaining(&self) -> usize {
        (layout::TCDM_SIZE as usize).saturating_sub(self.tcdm.len())
    }

    /// Emits a raw instruction.
    pub fn inst(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// Places a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics on duplicate labels (also reported by [`build`](Self::build)).
    pub fn label(&mut self, name: &str) {
        let prev = self.labels.insert(name.to_string(), self.insts.len());
        assert!(prev.is_none(), "duplicate label `{name}`");
    }

    /// Finalizes the program, resolving label fixups.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] for undefined labels, out-of-range branches or
    /// TCDM overflow.
    pub fn build(mut self) -> Result<Program, AsmError> {
        if self.tcdm.len() > layout::TCDM_SIZE as usize {
            return Err(AsmError::TcdmOverflow { required: self.tcdm.len() });
        }
        for (idx, label, kind) in std::mem::take(&mut self.fixups) {
            let &target =
                self.labels.get(&label).ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
            let offset = (target as i64 - idx as i64) * 4;
            let (min, max) = match kind {
                FixKind::Branch => (-4096, 4094),
                FixKind::Jal => (-(1 << 20), (1 << 20) - 2),
            };
            if offset < min || offset > max {
                return Err(AsmError::BranchOutOfRange { label, offset });
            }
            match &mut self.insts[idx] {
                Inst::Branch { offset: o, .. } | Inst::Jal { offset: o, .. } => *o = offset as i32,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        // Resolve labels into symbols and into ordered pc spans: each label
        // covers from its own address to the next label's (or text end);
        // labels at the same address share a span.
        let mut placed: Vec<(usize, String)> =
            std::mem::take(&mut self.labels).into_iter().map(|(n, i)| (i, n)).collect();
        placed.sort();
        let mut labels = Vec::with_capacity(placed.len());
        for (k, (idx, name)) in placed.iter().enumerate() {
            let end_idx = placed[k..]
                .iter()
                .find_map(|(j, _)| (j > idx).then_some(*j))
                .unwrap_or(self.insts.len());
            let start = layout::TEXT_BASE + (*idx as u32) * 4;
            self.symbols.insert(name.clone(), start);
            labels.push(crate::program::LabelSpan {
                name: name.clone(),
                start,
                end: layout::TEXT_BASE + (end_idx as u32) * 4,
            });
        }
        Ok(Program::new(
            self.insts,
            self.tcdm,
            self.l2,
            self.main,
            self.symbols,
            labels,
            self.parallel,
        ))
    }

    // ---------------------------------------------------------------- data

    fn alloc(region: &mut Vec<u8>, base: u32, align: usize, bytes: &[u8]) -> u32 {
        debug_assert!(align.is_power_of_two());
        let pad = (align - region.len() % align) % align;
        region.extend(std::iter::repeat_n(0u8, pad));
        let addr = base + region.len() as u32;
        region.extend_from_slice(bytes);
        addr
    }

    fn record_symbol(&mut self, name: &str, addr: u32) {
        let prev = self.symbols.insert(name.to_string(), addr);
        assert!(prev.is_none(), "duplicate data symbol `{name}`");
    }

    /// Records a named symbol at an explicit address — an alias into a
    /// larger allocation, e.g. the live output window inside a working
    /// buffer that starts with scratch blocks.
    ///
    /// # Panics
    ///
    /// Panics on duplicate symbol names.
    pub fn symbol_at(&mut self, name: &str, addr: u32) {
        self.record_symbol(name, addr);
    }

    /// Allocates initialized bytes in the TCDM and returns their address.
    ///
    /// # Panics
    ///
    /// Panics on duplicate symbol names or if the TCDM capacity is exceeded
    /// (use [`tcdm_remaining`](Self::tcdm_remaining) to plan block sizes).
    pub fn tcdm_bytes(&mut self, name: &str, align: usize, bytes: &[u8]) -> u32 {
        let addr = Self::alloc(&mut self.tcdm, layout::TCDM_BASE, align, bytes);
        assert!(
            self.tcdm.len() <= layout::TCDM_SIZE as usize,
            "tcdm overflow allocating `{name}` ({} bytes total)",
            self.tcdm.len()
        );
        self.record_symbol(name, addr);
        addr
    }

    /// Allocates zero-initialized TCDM space.
    pub fn tcdm_reserve(&mut self, name: &str, size: usize, align: usize) -> u32 {
        self.tcdm_bytes(name, align, &vec![0u8; size])
    }

    /// Allocates an `f64` array in the TCDM.
    pub fn tcdm_f64(&mut self, name: &str, values: &[f64]) -> u32 {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.tcdm_bytes(name, 8, &bytes)
    }

    /// Allocates an `f32` array in the TCDM.
    pub fn tcdm_f32(&mut self, name: &str, values: &[f32]) -> u32 {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.tcdm_bytes(name, 4, &bytes)
    }

    /// Allocates a `u64` array in the TCDM.
    pub fn tcdm_u64(&mut self, name: &str, values: &[u64]) -> u32 {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.tcdm_bytes(name, 8, &bytes)
    }

    /// Allocates a `u32` array in the TCDM.
    pub fn tcdm_u32(&mut self, name: &str, values: &[u32]) -> u32 {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.tcdm_bytes(name, 4, &bytes)
    }

    /// Allocates initialized bytes in the shared L2 region (reachable by
    /// every cluster through the interconnect; the natural home of tiled
    /// kernels' full operands, staged into the TCDM by DMA).
    pub fn l2_bytes(&mut self, name: &str, align: usize, bytes: &[u8]) -> u32 {
        let addr = Self::alloc(&mut self.l2, layout::L2_BASE, align, bytes);
        assert!(
            self.l2.len() <= layout::L2_SIZE as usize,
            "l2 overflow allocating `{name}` ({} bytes total)",
            self.l2.len()
        );
        self.record_symbol(name, addr);
        addr
    }

    /// Allocates an `f64` array in the shared L2.
    pub fn l2_f64(&mut self, name: &str, values: &[f64]) -> u32 {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.l2_bytes(name, 8, &bytes)
    }

    /// Allocates zero-initialized L2 space.
    pub fn l2_reserve(&mut self, name: &str, size: usize, align: usize) -> u32 {
        self.l2_bytes(name, align, &vec![0u8; size])
    }

    /// Allocates initialized bytes in main memory (DMA-reachable region).
    pub fn main_bytes(&mut self, name: &str, align: usize, bytes: &[u8]) -> u32 {
        assert!(
            self.main.len() + bytes.len() <= layout::MAIN_SIZE as usize,
            "main memory overflow allocating `{name}`"
        );
        let addr = Self::alloc(&mut self.main, layout::MAIN_BASE, align, bytes);
        self.record_symbol(name, addr);
        addr
    }

    /// Allocates an `f32` array in main memory.
    pub fn main_f32(&mut self, name: &str, values: &[f32]) -> u32 {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.main_bytes(name, 4, &bytes)
    }

    /// Allocates zero-initialized main-memory space.
    pub fn main_reserve(&mut self, name: &str, size: usize, align: usize) -> u32 {
        self.main_bytes(name, align, &vec![0u8; size])
    }

    // --------------------------------------------------- pseudo-instructions

    /// `li rd, value`: loads a 32-bit constant (1–2 instructions).
    pub fn li(&mut self, rd: IntReg, value: i32) {
        if (-2048..=2047).contains(&value) {
            self.addi(rd, IntReg::ZERO, value);
        } else {
            let lo = (value << 20) >> 20;
            let hi = value.wrapping_sub(lo);
            self.inst(Inst::Lui { rd, imm: hi });
            if lo != 0 {
                self.addi(rd, rd, lo);
            }
        }
    }

    /// `li` with an unsigned constant (e.g. an address).
    pub fn li_u(&mut self, rd: IntReg, value: u32) {
        self.li(rd, value as i32);
    }

    /// `la rd, symbol`: loads a previously allocated data symbol's address.
    ///
    /// # Panics
    ///
    /// Panics if the symbol has not been allocated yet.
    pub fn la(&mut self, rd: IntReg, symbol: &str) {
        let addr = *self.symbols.get(symbol).unwrap_or_else(|| {
            panic!("unknown data symbol `{symbol}` (allocate data before code)")
        });
        self.li_u(rd, addr);
    }

    /// `mv rd, rs` (canonical `addi rd, rs, 0`).
    pub fn mv(&mut self, rd: IntReg, rs: IntReg) {
        self.addi(rd, rs, 0);
    }

    /// `nop`
    pub fn nop(&mut self) {
        self.inst(Inst::NOP);
    }

    /// `j label` (`jal x0, label`).
    pub fn j(&mut self, label: &str) {
        self.fixups.push((self.insts.len(), label.to_string(), FixKind::Jal));
        self.inst(Inst::Jal { rd: IntReg::ZERO, offset: 0 });
    }

    /// `beqz rs, label`
    pub fn beqz(&mut self, rs: IntReg, label: &str) {
        self.branch(BranchOp::Eq, rs, IntReg::ZERO, label);
    }

    /// `bnez rs, label`
    pub fn bnez(&mut self, rs: IntReg, label: &str) {
        self.branch(BranchOp::Ne, rs, IntReg::ZERO, label);
    }

    /// `fmv.d rd, rs` (canonical `fsgnj.d rd, rs, rs`).
    pub fn fmv_d(&mut self, rd: FpReg, rs: FpReg) {
        self.inst(Inst::FpSgnj { op: SgnjOp::Sgnj, fmt: FpFmt::D, rd, rs1: rs, rs2: rs });
    }

    // ------------------------------------------------------------ RV32I / M

    /// `addi rd, rs1, imm`
    pub fn addi(&mut self, rd: IntReg, rs1: IntReg, imm: i32) {
        self.inst(Inst::OpImm { op: AluImmOp::Addi, rd, rs1, imm });
    }

    /// `andi rd, rs1, imm`
    pub fn andi(&mut self, rd: IntReg, rs1: IntReg, imm: i32) {
        self.inst(Inst::OpImm { op: AluImmOp::Andi, rd, rs1, imm });
    }

    /// `ori rd, rs1, imm`
    pub fn ori(&mut self, rd: IntReg, rs1: IntReg, imm: i32) {
        self.inst(Inst::OpImm { op: AluImmOp::Ori, rd, rs1, imm });
    }

    /// `xori rd, rs1, imm`
    pub fn xori(&mut self, rd: IntReg, rs1: IntReg, imm: i32) {
        self.inst(Inst::OpImm { op: AluImmOp::Xori, rd, rs1, imm });
    }

    /// `slli rd, rs1, shamt`
    pub fn slli(&mut self, rd: IntReg, rs1: IntReg, shamt: i32) {
        self.inst(Inst::OpImm { op: AluImmOp::Slli, rd, rs1, imm: shamt });
    }

    /// `srli rd, rs1, shamt`
    pub fn srli(&mut self, rd: IntReg, rs1: IntReg, shamt: i32) {
        self.inst(Inst::OpImm { op: AluImmOp::Srli, rd, rs1, imm: shamt });
    }

    /// `srai rd, rs1, shamt`
    pub fn srai(&mut self, rd: IntReg, rs1: IntReg, shamt: i32) {
        self.inst(Inst::OpImm { op: AluImmOp::Srai, rd, rs1, imm: shamt });
    }

    /// `slti rd, rs1, imm`
    pub fn slti(&mut self, rd: IntReg, rs1: IntReg, imm: i32) {
        self.inst(Inst::OpImm { op: AluImmOp::Slti, rd, rs1, imm });
    }

    /// `sltiu rd, rs1, imm`
    pub fn sltiu(&mut self, rd: IntReg, rs1: IntReg, imm: i32) {
        self.inst(Inst::OpImm { op: AluImmOp::Sltiu, rd, rs1, imm });
    }

    /// `add rd, rs1, rs2`
    pub fn add(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.inst(Inst::OpReg { op: AluOp::Add, rd, rs1, rs2 });
    }

    /// `sub rd, rs1, rs2`
    pub fn sub(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.inst(Inst::OpReg { op: AluOp::Sub, rd, rs1, rs2 });
    }

    /// `and rd, rs1, rs2`
    pub fn and(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.inst(Inst::OpReg { op: AluOp::And, rd, rs1, rs2 });
    }

    /// `or rd, rs1, rs2`
    pub fn or(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.inst(Inst::OpReg { op: AluOp::Or, rd, rs1, rs2 });
    }

    /// `xor rd, rs1, rs2`
    pub fn xor(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.inst(Inst::OpReg { op: AluOp::Xor, rd, rs1, rs2 });
    }

    /// `sll rd, rs1, rs2`
    pub fn sll(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.inst(Inst::OpReg { op: AluOp::Sll, rd, rs1, rs2 });
    }

    /// `srl rd, rs1, rs2`
    pub fn srl(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.inst(Inst::OpReg { op: AluOp::Srl, rd, rs1, rs2 });
    }

    /// `sltu rd, rs1, rs2`
    pub fn sltu(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.inst(Inst::OpReg { op: AluOp::Sltu, rd, rs1, rs2 });
    }

    /// `mul rd, rs1, rs2`
    pub fn mul(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.inst(Inst::OpReg { op: AluOp::Mul, rd, rs1, rs2 });
    }

    /// `mulhu rd, rs1, rs2`
    pub fn mulhu(&mut self, rd: IntReg, rs1: IntReg, rs2: IntReg) {
        self.inst(Inst::OpReg { op: AluOp::Mulhu, rd, rs1, rs2 });
    }

    /// `lw rd, offset(rs1)`
    pub fn lw(&mut self, rd: IntReg, rs1: IntReg, offset: i32) {
        self.inst(Inst::Load { op: LoadOp::Lw, rd, rs1, offset });
    }

    /// `lhu rd, offset(rs1)`
    pub fn lhu(&mut self, rd: IntReg, rs1: IntReg, offset: i32) {
        self.inst(Inst::Load { op: LoadOp::Lhu, rd, rs1, offset });
    }

    /// `sw rs2, offset(rs1)`
    pub fn sw(&mut self, rs2: IntReg, rs1: IntReg, offset: i32) {
        self.inst(Inst::Store { op: StoreOp::Sw, rs2, rs1, offset });
    }

    /// `sh rs2, offset(rs1)`
    pub fn sh(&mut self, rs2: IntReg, rs1: IntReg, offset: i32) {
        self.inst(Inst::Store { op: StoreOp::Sh, rs2, rs1, offset });
    }

    fn branch(&mut self, op: BranchOp, rs1: IntReg, rs2: IntReg, label: &str) {
        self.fixups.push((self.insts.len(), label.to_string(), FixKind::Branch));
        self.inst(Inst::Branch { op, rs1, rs2, offset: 0 });
    }

    /// `beq rs1, rs2, label`
    pub fn beq(&mut self, rs1: IntReg, rs2: IntReg, label: &str) {
        self.branch(BranchOp::Eq, rs1, rs2, label);
    }

    /// `bne rs1, rs2, label`
    pub fn bne(&mut self, rs1: IntReg, rs2: IntReg, label: &str) {
        self.branch(BranchOp::Ne, rs1, rs2, label);
    }

    /// `blt rs1, rs2, label`
    pub fn blt(&mut self, rs1: IntReg, rs2: IntReg, label: &str) {
        self.branch(BranchOp::Lt, rs1, rs2, label);
    }

    /// `bge rs1, rs2, label`
    pub fn bge(&mut self, rs1: IntReg, rs2: IntReg, label: &str) {
        self.branch(BranchOp::Ge, rs1, rs2, label);
    }

    /// `bltu rs1, rs2, label`
    pub fn bltu(&mut self, rs1: IntReg, rs2: IntReg, label: &str) {
        self.branch(BranchOp::Ltu, rs1, rs2, label);
    }

    /// `bgeu rs1, rs2, label`
    pub fn bgeu(&mut self, rs1: IntReg, rs2: IntReg, label: &str) {
        self.branch(BranchOp::Geu, rs1, rs2, label);
    }

    /// `ecall` (halts the simulator).
    pub fn ecall(&mut self) {
        self.inst(Inst::Ecall);
    }

    // ------------------------------------------------------------------ F/D

    /// `fld rd, offset(rs1)`
    pub fn fld(&mut self, rd: FpReg, rs1: IntReg, offset: i32) {
        self.inst(Inst::Fld { rd, rs1, offset });
    }

    /// `fsd rs2, offset(rs1)`
    pub fn fsd(&mut self, rs2: FpReg, rs1: IntReg, offset: i32) {
        self.inst(Inst::Fsd { rs2, rs1, offset });
    }

    /// `flw rd, offset(rs1)`
    pub fn flw(&mut self, rd: FpReg, rs1: IntReg, offset: i32) {
        self.inst(Inst::Flw { rd, rs1, offset });
    }

    /// `fsw rs2, offset(rs1)`
    pub fn fsw(&mut self, rs2: FpReg, rs1: IntReg, offset: i32) {
        self.inst(Inst::Fsw { rs2, rs1, offset });
    }

    /// `fadd.d rd, rs1, rs2`
    pub fn fadd_d(&mut self, rd: FpReg, rs1: FpReg, rs2: FpReg) {
        self.inst(Inst::FpOp { op: FpAluOp::Add, fmt: FpFmt::D, rd, rs1, rs2 });
    }

    /// `fsub.d rd, rs1, rs2`
    pub fn fsub_d(&mut self, rd: FpReg, rs1: FpReg, rs2: FpReg) {
        self.inst(Inst::FpOp { op: FpAluOp::Sub, fmt: FpFmt::D, rd, rs1, rs2 });
    }

    /// `fmul.d rd, rs1, rs2`
    pub fn fmul_d(&mut self, rd: FpReg, rs1: FpReg, rs2: FpReg) {
        self.inst(Inst::FpOp { op: FpAluOp::Mul, fmt: FpFmt::D, rd, rs1, rs2 });
    }

    /// `fdiv.d rd, rs1, rs2`
    pub fn fdiv_d(&mut self, rd: FpReg, rs1: FpReg, rs2: FpReg) {
        self.inst(Inst::FpOp { op: FpAluOp::Div, fmt: FpFmt::D, rd, rs1, rs2 });
    }

    /// `fmadd.d rd, rs1, rs2, rs3` (`rd = rs1*rs2 + rs3`)
    pub fn fmadd_d(&mut self, rd: FpReg, rs1: FpReg, rs2: FpReg, rs3: FpReg) {
        self.inst(Inst::FpFma { op: FmaOp::Madd, fmt: FpFmt::D, rd, rs1, rs2, rs3 });
    }

    /// `fmsub.d rd, rs1, rs2, rs3` (`rd = rs1*rs2 - rs3`)
    pub fn fmsub_d(&mut self, rd: FpReg, rs1: FpReg, rs2: FpReg, rs3: FpReg) {
        self.inst(Inst::FpFma { op: FmaOp::Msub, fmt: FpFmt::D, rd, rs1, rs2, rs3 });
    }

    /// `fnmsub.d rd, rs1, rs2, rs3` (`rd = -(rs1*rs2) + rs3`)
    pub fn fnmsub_d(&mut self, rd: FpReg, rs1: FpReg, rs2: FpReg, rs3: FpReg) {
        self.inst(Inst::FpFma { op: FmaOp::Nmsub, fmt: FpFmt::D, rd, rs1, rs2, rs3 });
    }

    /// `feq.d rd, rs1, rs2` (integer destination)
    pub fn feq_d(&mut self, rd: IntReg, rs1: FpReg, rs2: FpReg) {
        self.inst(Inst::FpCmp { op: FpCmpOp::Eq, fmt: FpFmt::D, rd, rs1, rs2 });
    }

    /// `flt.d rd, rs1, rs2` (integer destination)
    pub fn flt_d(&mut self, rd: IntReg, rs1: FpReg, rs2: FpReg) {
        self.inst(Inst::FpCmp { op: FpCmpOp::Lt, fmt: FpFmt::D, rd, rs1, rs2 });
    }

    /// `fle.d rd, rs1, rs2` (integer destination)
    pub fn fle_d(&mut self, rd: IntReg, rs1: FpReg, rs2: FpReg) {
        self.inst(Inst::FpCmp { op: FpCmpOp::Le, fmt: FpFmt::D, rd, rs1, rs2 });
    }

    /// `fcvt.d.w rd, rs1` (reads the integer RF)
    pub fn fcvt_d_w(&mut self, rd: FpReg, rs1: IntReg) {
        self.inst(Inst::FpCvtI2F { from: IntCvt::W, fmt: FpFmt::D, rd, rs1 });
    }

    /// `fcvt.d.wu rd, rs1` (reads the integer RF)
    pub fn fcvt_d_wu(&mut self, rd: FpReg, rs1: IntReg) {
        self.inst(Inst::FpCvtI2F { from: IntCvt::Wu, fmt: FpFmt::D, rd, rs1 });
    }

    /// `fcvt.w.d rd, rs1` (writes the integer RF; truncating)
    pub fn fcvt_w_d(&mut self, rd: IntReg, rs1: FpReg) {
        self.inst(Inst::FpCvtF2I { to: IntCvt::W, fmt: FpFmt::D, rd, rs1 });
    }

    /// `fcvt.d.s rd, rs1`
    pub fn fcvt_d_s(&mut self, rd: FpReg, rs1: FpReg) {
        self.inst(Inst::FpCvtF2F { to: FpFmt::D, rd, rs1 });
    }

    /// `fcvt.s.d rd, rs1`
    pub fn fcvt_s_d(&mut self, rd: FpReg, rs1: FpReg) {
        self.inst(Inst::FpCvtF2F { to: FpFmt::S, rd, rs1 });
    }

    /// `fmv.x.w rd, rs1`
    pub fn fmv_x_w(&mut self, rd: IntReg, rs1: FpReg) {
        self.inst(Inst::FpMvF2X { rd, rs1 });
    }

    /// `fmv.w.x rd, rs1`
    pub fn fmv_w_x(&mut self, rd: FpReg, rs1: IntReg) {
        self.inst(Inst::FpMvX2F { rd, rs1 });
    }

    // ------------------------------------------------------- Snitch: FREP

    /// `frep.o rep, max_inst, stagger_max, stagger_mask`: hardware loop over
    /// the next `max_inst` FP instructions, `rep`+1 total repetitions.
    pub fn frep_o(&mut self, rep: IntReg, max_inst: u8, stagger_max: u8, stagger_mask: u8) {
        self.inst(Inst::FrepO { rep, max_inst, stagger_max, stagger_mask });
    }

    /// `frep.i rep, max_inst, stagger_max, stagger_mask`: like `frep.o` but
    /// each instruction repeats back-to-back before the next one issues.
    pub fn frep_i(&mut self, rep: IntReg, max_inst: u8, stagger_max: u8, stagger_mask: u8) {
        self.inst(Inst::FrepI { rep, max_inst, stagger_max, stagger_mask });
    }

    // -------------------------------------------------------- Snitch: SSR

    /// `scfgwi value, word(ssr)`: writes one SSR configuration word.
    pub fn scfgwi(&mut self, value: IntReg, ssr: usize, word: SsrCfgWord) {
        self.inst(Inst::Scfgwi { value, addr: word.addr(ssr) });
    }

    /// Enables SSR register semantics (`csrrsi x0, ssr, 1`).
    pub fn ssr_enable(&mut self) {
        self.inst(Inst::Csr { op: CsrOp::Rsi, rd: IntReg::ZERO, csr: CSR_SSR, src: 1 });
    }

    /// Disables SSR register semantics (`csrrci x0, ssr, 1`).
    pub fn ssr_disable(&mut self) {
        self.inst(Inst::Csr { op: CsrOp::Rci, rd: IntReg::ZERO, csr: CSR_SSR, src: 1 });
    }

    /// FPU fence: stalls the integer core until the FP subsystem has drained.
    pub fn fpu_fence(&mut self) {
        self.inst(Inst::Csr { op: CsrOp::Rs, rd: IntReg::ZERO, csr: CSR_FPU_FENCE, src: 0 });
    }

    /// Marks the program as SPMD: every compute core of the cluster boots at
    /// the entry point (code branches on `mhartid`). Without this, only
    /// hart 0 runs and the program behaves identically on any cluster size.
    pub fn parallel(&mut self) {
        self.parallel = true;
    }

    /// `csrr rd, mhartid`: reads the hart id.
    pub fn csrr_mhartid(&mut self, rd: IntReg) {
        self.inst(Inst::Csr { op: CsrOp::Rs, rd, csr: CSR_MHARTID, src: 0 });
    }

    /// `csrr rd, clusterid`: reads the index of this core's cluster in the
    /// system (0 on a single-cluster machine).
    pub fn csrr_cluster_id(&mut self, rd: IntReg) {
        self.inst(Inst::Csr { op: CsrOp::Rs, rd, csr: CSR_CLUSTER_ID, src: 0 });
    }

    /// Cluster hardware barrier: stalls this hart until every other hart has
    /// arrived at a barrier (or halted), then all waiting harts release in
    /// the same cycle.
    pub fn barrier(&mut self) {
        self.inst(Inst::Csr { op: CsrOp::Rs, rd: IntReg::ZERO, csr: CSR_BARRIER, src: 0 });
    }

    // -------------------------------------------------------- Snitch: DMA

    /// `dmsrc rs1` (32-bit source address; high word zero).
    pub fn dmsrc(&mut self, rs1: IntReg) {
        self.inst(Inst::Dma { op: DmaOp::Src, rd: IntReg::ZERO, rs1, rs2: IntReg::ZERO, imm5: 0 });
    }

    /// `dmdst rs1` (32-bit destination address).
    pub fn dmdst(&mut self, rs1: IntReg) {
        self.inst(Inst::Dma { op: DmaOp::Dst, rd: IntReg::ZERO, rs1, rs2: IntReg::ZERO, imm5: 0 });
    }

    /// `dmstr rs1, rs2`: source (`rs1`) and destination (`rs2`) strides for
    /// a 2-D transfer (applied between successive `dmrep` rows).
    pub fn dmstr(&mut self, src_stride: IntReg, dst_stride: IntReg) {
        self.inst(Inst::Dma {
            op: DmaOp::Str,
            rd: IntReg::ZERO,
            rs1: src_stride,
            rs2: dst_stride,
            imm5: 0,
        });
    }

    /// `dmrep rs1`: row repetition count for a 2-D transfer (one-shot: the
    /// next `dmcpyi` consumes it).
    pub fn dmrep(&mut self, reps: IntReg) {
        self.inst(Inst::Dma {
            op: DmaOp::Rep,
            rd: IntReg::ZERO,
            rs1: reps,
            rs2: IntReg::ZERO,
            imm5: 0,
        });
    }

    /// `dmcpyi rd, rs1, 0`: start a 1-D copy of `rs1` bytes.
    pub fn dmcpyi(&mut self, rd: IntReg, size: IntReg) {
        self.inst(Inst::Dma { op: DmaOp::CpyI, rd, rs1: size, rs2: IntReg::ZERO, imm5: 0 });
    }

    /// `dmstati rd, 0`: number of pending DMA transfers.
    pub fn dmstati(&mut self, rd: IntReg) {
        self.inst(Inst::Dma {
            op: DmaOp::StatI,
            rd,
            rs1: IntReg::ZERO,
            rs2: IntReg::ZERO,
            imm5: 0,
        });
    }

    // ----------------------------------------------------- COPIFT custom-1

    /// `copift.feq.d rd, rs1, rs2` (FP destination)
    pub fn copift_feq_d(&mut self, rd: FpReg, rs1: FpReg, rs2: FpReg) {
        self.inst(Inst::CopiftCmp { op: FpCmpOp::Eq, rd, rs1, rs2 });
    }

    /// `copift.flt.d rd, rs1, rs2` (FP destination)
    pub fn copift_flt_d(&mut self, rd: FpReg, rs1: FpReg, rs2: FpReg) {
        self.inst(Inst::CopiftCmp { op: FpCmpOp::Lt, rd, rs1, rs2 });
    }

    /// `copift.fle.d rd, rs1, rs2` (FP destination)
    pub fn copift_fle_d(&mut self, rd: FpReg, rs1: FpReg, rs2: FpReg) {
        self.inst(Inst::CopiftCmp { op: FpCmpOp::Le, rd, rs1, rs2 });
    }

    /// `copift.fcvt.d.w rd, rs1`: FP rs1 low 32 bits as signed → double.
    pub fn copift_fcvt_d_w(&mut self, rd: FpReg, rs1: FpReg) {
        self.inst(Inst::CopiftCvtI2F { from: IntCvt::W, rd, rs1 });
    }

    /// `copift.fcvt.d.wu rd, rs1`: FP rs1 low 32 bits as unsigned → double.
    pub fn copift_fcvt_d_wu(&mut self, rd: FpReg, rs1: FpReg) {
        self.inst(Inst::CopiftCvtI2F { from: IntCvt::Wu, rd, rs1 });
    }

    /// `copift.fcvt.w.d rd, rs1`: double → int32 into FP rd's low 32 bits.
    pub fn copift_fcvt_w_d(&mut self, rd: FpReg, rs1: FpReg) {
        self.inst(Inst::CopiftCvtF2I { to: IntCvt::W, rd, rs1 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut b = ProgramBuilder::new();
        b.label("start");
        b.beqz(IntReg::A0, "end"); // forward: +12
        b.nop();
        b.j("start"); // backward: -8
        b.label("end");
        b.ecall();
        let p = b.build().unwrap();
        match p.text()[0] {
            Inst::Branch { offset, .. } => assert_eq!(offset, 12),
            ref other => panic!("expected branch, got {other}"),
        }
        match p.text()[2] {
            Inst::Jal { offset, .. } => assert_eq!(offset, -8),
            ref other => panic!("expected jal, got {other}"),
        }
        assert_eq!(p.symbol("end"), Some(layout::TEXT_BASE + 12));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.j("nowhere");
        assert_eq!(b.build().unwrap_err(), AsmError::UndefinedLabel("nowhere".into()));
    }

    #[test]
    fn li_small_and_large() {
        let mut b = ProgramBuilder::new();
        b.li(IntReg::A0, 42); // 1 inst
        b.li(IntReg::A1, 0x12345); // 2 insts
        b.li(IntReg::A2, -1); // 1 inst
        b.li(IntReg::A3, 0x7ffff800_u32 as i32); // lui only? low bits 0x800
        let p = b.build().unwrap();
        // Verify li produces the right values by interpreting the adds.
        let mut regs = [0i64; 32];
        for inst in p.text() {
            match *inst {
                Inst::Lui { rd, imm } => regs[rd.index() as usize] = i64::from(imm),
                Inst::OpImm { op: AluImmOp::Addi, rd, rs1, imm } => {
                    regs[rd.index() as usize] =
                        (regs[rs1.index() as usize] as i32).wrapping_add(imm).into();
                }
                ref other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(regs[10] as i32, 42);
        assert_eq!(regs[11] as i32, 0x12345);
        assert_eq!(regs[12] as i32, -1);
        assert_eq!(regs[13] as i32, 0x7ffff800_u32 as i32);
    }

    #[test]
    fn data_symbols_resolve_in_la() {
        let mut b = ProgramBuilder::new();
        let addr = b.tcdm_f64("xs", &[1.0, 2.0]);
        assert_eq!(addr % 8, 0);
        b.la(IntReg::A0, "xs");
        let p = b.build().unwrap();
        assert_eq!(p.symbol("xs"), Some(addr));
        assert_eq!(p.tcdm_image().len(), 16);
        let first = f64::from_le_bytes(p.tcdm_image()[0..8].try_into().unwrap());
        assert_eq!(first, 1.0);
    }

    #[test]
    fn alignment_pads_correctly() {
        let mut b = ProgramBuilder::new();
        b.tcdm_bytes("a", 1, &[1, 2, 3]);
        let addr = b.tcdm_f64("b", &[0.5]);
        assert_eq!(addr % 8, 0);
        assert_eq!(addr - layout::TCDM_BASE, 8);
    }

    #[test]
    fn tcdm_overflow_panics() {
        let mut b = ProgramBuilder::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.tcdm_reserve("huge", layout::TCDM_SIZE as usize + 1, 8);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn duplicate_label_panics() {
        let mut b = ProgramBuilder::new();
        b.label("x");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.label("x")));
        assert!(r.is_err());
    }

    #[test]
    fn label_spans_round_trip() {
        let mut b = ProgramBuilder::new();
        b.label("prologue");
        b.nop();
        b.nop();
        b.label("body");
        b.label("body_alias"); // same address: shares the span
        b.nop();
        b.label("reduce");
        b.ecall();
        let p = b.build().unwrap();
        let base = layout::TEXT_BASE;
        assert_eq!(p.labels().len(), 4);
        let span = |name: &str| p.label_span(name).unwrap();
        assert_eq!((span("prologue").start, span("prologue").end), (base, base + 8));
        assert_eq!((span("body").start, span("body").end), (base + 8, base + 12));
        assert_eq!((span("body_alias").start, span("body_alias").end), (base + 8, base + 12));
        assert_eq!((span("reduce").start, span("reduce").end), (base + 12, base + 16));
        // Spans agree with the symbol table and tile the text contiguously.
        for l in p.labels() {
            assert_eq!(p.symbol(&l.name), Some(l.start));
            assert!(l.contains(l.start) && !l.contains(l.end));
        }
        assert_eq!(p.labels().last().unwrap().end, base + 4 * p.text().len() as u32);
    }

    #[test]
    fn trailing_label_covers_nothing() {
        let mut b = ProgramBuilder::new();
        b.ecall();
        b.label("end");
        let p = b.build().unwrap();
        let span = p.label_span("end").unwrap();
        assert_eq!(span.start, span.end, "a label at text end covers zero instructions");
        assert!(!span.contains(span.start));
    }

    #[test]
    fn disassembly_contains_labels() {
        let mut b = ProgramBuilder::new();
        b.label("entry");
        b.nop();
        b.ecall();
        let p = b.build().unwrap();
        let listing = p.disassemble();
        assert!(listing.contains("entry:"));
        assert!(listing.contains("ecall"));
    }
}
