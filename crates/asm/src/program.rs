//! The assembled program image.

use std::collections::HashMap;

use snitch_riscv::inst::Inst;

use crate::layout;

/// A resolved code label and the half-open pc range `[start, end)` it
/// covers: from its own address up to the next label (or the end of the
/// text section). Labels placed at the same address share a span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LabelSpan {
    /// The label name as placed by `ProgramBuilder::label`.
    pub name: String,
    /// Address of the first instruction the label covers.
    pub start: u32,
    /// One past the last covered instruction's address.
    pub end: u32,
}

impl LabelSpan {
    /// Whether `pc` falls inside this span.
    #[must_use]
    pub fn contains(&self, pc: u32) -> bool {
        (self.start..self.end).contains(&pc)
    }
}

/// An assembled program: instruction stream, initial TCDM, L2 and
/// main-memory images, the symbol table, and the resolved label spans.
#[derive(Clone, Debug, Default)]
pub struct Program {
    text: Vec<Inst>,
    tcdm_image: Vec<u8>,
    l2_image: Vec<u8>,
    main_image: Vec<u8>,
    symbols: HashMap<String, u32>,
    labels: Vec<LabelSpan>,
    parallel: bool,
}

impl Program {
    pub(crate) fn new(
        text: Vec<Inst>,
        tcdm_image: Vec<u8>,
        l2_image: Vec<u8>,
        main_image: Vec<u8>,
        symbols: HashMap<String, u32>,
        labels: Vec<LabelSpan>,
        parallel: bool,
    ) -> Self {
        Program { text, tcdm_image, l2_image, main_image, symbols, labels, parallel }
    }

    /// Whether this is an SPMD program written for every compute core of the
    /// cluster: all harts boot at the entry point and the code branches on
    /// `mhartid`. Non-parallel programs (the default) boot only hart 0, so
    /// they behave identically on a cluster of any size.
    #[must_use]
    pub fn parallel(&self) -> bool {
        self.parallel
    }

    /// The instruction stream, starting at [`layout::TEXT_BASE`].
    #[must_use]
    pub fn text(&self) -> &[Inst] {
        &self.text
    }

    /// The initial TCDM image, starting at [`layout::TCDM_BASE`].
    #[must_use]
    pub fn tcdm_image(&self) -> &[u8] {
        &self.tcdm_image
    }

    /// The initial shared-L2 image, starting at [`layout::L2_BASE`]. In a
    /// multi-cluster system the image is loaded once into the canonical L2,
    /// not once per cluster.
    #[must_use]
    pub fn l2_image(&self) -> &[u8] {
        &self.l2_image
    }

    /// The initial main-memory image, starting at [`layout::MAIN_BASE`].
    #[must_use]
    pub fn main_image(&self) -> &[u8] {
        &self.main_image
    }

    /// Looks up a data symbol or code label address.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Every resolved code label with the pc span it covers, ordered by
    /// address (labels at one address sort by name). The spans tile the
    /// text section from the first label onward without gaps or overlap,
    /// which is what pc-to-region attribution (the cycle profiler) needs.
    #[must_use]
    pub fn labels(&self) -> &[LabelSpan] {
        &self.labels
    }

    /// The span of one label by name.
    #[must_use]
    pub fn label_span(&self, name: &str) -> Option<&LabelSpan> {
        self.labels.iter().find(|l| l.name == name)
    }

    /// The address of the first instruction.
    #[must_use]
    pub fn entry(&self) -> u32 {
        layout::TEXT_BASE
    }

    /// Encodes the instruction stream to binary words.
    #[must_use]
    pub fn encode_text(&self) -> Vec<u32> {
        self.text.iter().map(Inst::encode).collect()
    }

    /// Renders a disassembly listing with addresses, one instruction per
    /// line, with label names interleaved.
    #[must_use]
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut by_addr: HashMap<u32, Vec<&str>> = HashMap::new();
        for (name, &addr) in &self.symbols {
            if addr >= layout::TEXT_BASE {
                by_addr.entry(addr).or_default().push(name);
            }
        }
        let mut out = String::new();
        for (i, inst) in self.text.iter().enumerate() {
            let addr = layout::TEXT_BASE + (i as u32) * 4;
            if let Some(labels) = by_addr.get(&addr) {
                for l in labels {
                    let _ = writeln!(out, "{l}:");
                }
            }
            let _ = writeln!(out, "  {addr:#010x}:  {inst}");
        }
        out
    }
}
