//! Def/use and classification metadata.
//!
//! Both the COPIFT data-flow analysis (Step 1 of the methodology) and the
//! cycle-accurate simulator need to know, for every instruction, which
//! registers it reads and writes, which register *file* each access targets,
//! and which execution resource it occupies. All of that is derived here from
//! the structured [`Inst`] type in one place.

use crate::inst::Inst;
use crate::ops::{DmaOp, FpAluOp};
use crate::reg::{FpReg, IntReg};

/// Adapter giving a register-visiting closure the `Vec::push` spelling the
/// `for_each_use`/`for_each_def` match bodies are written in.
struct Visit<'a, F: FnMut(RegRef)>(&'a mut F);

impl<F: FnMut(RegRef)> Visit<'_, F> {
    fn push(&mut self, r: RegRef) {
        (self.0)(r);
    }
}

/// A reference to a register in one of the two architectural register files.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RegRef {
    /// Integer register file (`x0..x31`).
    Int(IntReg),
    /// Floating-point register file (`f0..f31`).
    Fp(FpReg),
}

impl RegRef {
    /// Whether this refers to the integer register file.
    #[must_use]
    pub fn is_int(self) -> bool {
        matches!(self, RegRef::Int(_))
    }

    /// Whether this refers to the floating-point register file.
    #[must_use]
    pub fn is_fp(self) -> bool {
        matches!(self, RegRef::Fp(_))
    }
}

impl std::fmt::Display for RegRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegRef::Int(r) => write!(f, "{r}"),
            RegRef::Fp(r) => write!(f, "{r}"),
        }
    }
}

/// Execution-resource class of an instruction (drives simulator timing).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InstClass {
    /// Single-cycle integer ALU operation (including `lui`/`auipc`).
    IntAlu,
    /// Integer multiply (multi-cycle `muldiv` unit, pipelined).
    IntMul,
    /// Integer divide/remainder (long-latency, non-pipelined).
    IntDiv,
    /// Integer load.
    IntLoad,
    /// Integer store.
    IntStore,
    /// Conditional branch.
    Branch,
    /// Unconditional jump (`jal`/`jalr`).
    Jump,
    /// CSR access.
    Csr,
    /// System (`ecall`/`ebreak`/`fence`).
    Sys,
    /// FP load (offloaded; LSU access from the FP subsystem).
    FpLoad,
    /// FP store.
    FpStore,
    /// FP add/sub/mul and fused multiply-add (pipelined FPU path).
    FpMulAdd,
    /// FP divide/square root (iterative unit).
    FpDivSqrt,
    /// Short FP operations: sign injection, min/max, compares, moves,
    /// classification and the COPIFT custom-1 instructions.
    FpShort,
    /// FP conversions.
    FpCvt,
    /// FREP configuration.
    Frep,
    /// SSR configuration (`scfgwi`/`scfgri`).
    SsrCfg,
    /// DMA programming.
    Dma,
}

/// Memory-access class, when the instruction accesses data memory.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemClass {
    /// Integer-side load of `bytes` bytes.
    Load { bytes: u32 },
    /// Integer-side store.
    Store { bytes: u32 },
    /// FP-side load.
    FpLoad { bytes: u32 },
    /// FP-side store.
    FpStore { bytes: u32 },
}

impl Inst {
    /// The execution-resource class of this instruction.
    #[must_use]
    pub fn class(&self) -> InstClass {
        match self {
            Inst::Lui { .. } | Inst::Auipc { .. } | Inst::OpImm { .. } => InstClass::IntAlu,
            Inst::OpReg { op, .. } => {
                if op.is_div() {
                    InstClass::IntDiv
                } else if op.is_muldiv() {
                    InstClass::IntMul
                } else {
                    InstClass::IntAlu
                }
            }
            Inst::Jal { .. } | Inst::Jalr { .. } => InstClass::Jump,
            Inst::Branch { .. } => InstClass::Branch,
            Inst::Load { .. } => InstClass::IntLoad,
            Inst::Store { .. } => InstClass::IntStore,
            Inst::Fence | Inst::Ecall | Inst::Ebreak => InstClass::Sys,
            Inst::Csr { .. } => InstClass::Csr,
            Inst::Flw { .. } | Inst::Fld { .. } => InstClass::FpLoad,
            Inst::Fsw { .. } | Inst::Fsd { .. } => InstClass::FpStore,
            Inst::FpOp { op, .. } => match op {
                FpAluOp::Div | FpAluOp::Sqrt => InstClass::FpDivSqrt,
                FpAluOp::Min | FpAluOp::Max => InstClass::FpShort,
                _ => InstClass::FpMulAdd,
            },
            Inst::FpFma { .. } => InstClass::FpMulAdd,
            Inst::FpSgnj { .. }
            | Inst::FpCmp { .. }
            | Inst::FpMvF2X { .. }
            | Inst::FpMvX2F { .. }
            | Inst::FpClass { .. }
            | Inst::CopiftCmp { .. }
            | Inst::CopiftClass { .. } => InstClass::FpShort,
            Inst::FpCvtF2I { .. }
            | Inst::FpCvtI2F { .. }
            | Inst::FpCvtF2F { .. }
            | Inst::CopiftCvtF2I { .. }
            | Inst::CopiftCvtI2F { .. } => InstClass::FpCvt,
            Inst::FrepO { .. } | Inst::FrepI { .. } => InstClass::Frep,
            Inst::Scfgwi { .. } | Inst::Scfgri { .. } => InstClass::SsrCfg,
            Inst::Dma { .. } => InstClass::Dma,
        }
    }

    /// The registers this instruction reads, in operand order.
    #[must_use]
    pub fn uses(&self) -> Vec<RegRef> {
        let mut v = Vec::with_capacity(3);
        self.for_each_use(|r| v.push(r));
        v
    }

    /// Visits the registers this instruction reads, in operand order,
    /// without allocating — the hot-path face of [`uses`](Self::uses) for
    /// per-instruction analyses that run over whole programs.
    pub fn for_each_use(&self, mut f: impl FnMut(RegRef)) {
        use RegRef::{Fp, Int};
        let mut v = Visit(&mut f);
        match *self {
            Inst::Lui { .. }
            | Inst::Auipc { .. }
            | Inst::Jal { .. }
            | Inst::Fence
            | Inst::Ecall
            | Inst::Ebreak => {}
            Inst::Jalr { rs1, .. } => v.push(Int(rs1)),
            Inst::Branch { rs1, rs2, .. } => {
                v.push(Int(rs1));
                v.push(Int(rs2));
            }
            Inst::Load { rs1, .. } => v.push(Int(rs1)),
            Inst::Store { rs2, rs1, .. } => {
                v.push(Int(rs2));
                v.push(Int(rs1));
            }
            Inst::OpImm { rs1, .. } => v.push(Int(rs1)),
            Inst::OpReg { rs1, rs2, .. } => {
                v.push(Int(rs1));
                v.push(Int(rs2));
            }
            Inst::Csr { op, src, .. } => {
                if !op.is_imm() {
                    v.push(Int(IntReg::new(src)));
                }
            }
            Inst::Flw { rs1, .. } | Inst::Fld { rs1, .. } => v.push(Int(rs1)),
            Inst::Fsw { rs2, rs1, .. } | Inst::Fsd { rs2, rs1, .. } => {
                v.push(Fp(rs2));
                v.push(Int(rs1));
            }
            Inst::FpOp { op, rs1, rs2, .. } => {
                v.push(Fp(rs1));
                if op != FpAluOp::Sqrt {
                    v.push(Fp(rs2));
                }
            }
            Inst::FpFma { rs1, rs2, rs3, .. } => {
                v.push(Fp(rs1));
                v.push(Fp(rs2));
                v.push(Fp(rs3));
            }
            Inst::FpSgnj { rs1, rs2, .. } => {
                v.push(Fp(rs1));
                v.push(Fp(rs2));
            }
            Inst::FpCmp { rs1, rs2, .. } => {
                v.push(Fp(rs1));
                v.push(Fp(rs2));
            }
            Inst::FpCvtF2I { rs1, .. } => v.push(Fp(rs1)),
            Inst::FpCvtI2F { rs1, .. } => v.push(Int(rs1)),
            Inst::FpCvtF2F { rs1, .. } => v.push(Fp(rs1)),
            Inst::FpMvF2X { rs1, .. } => v.push(Fp(rs1)),
            Inst::FpMvX2F { rs1, .. } => v.push(Int(rs1)),
            Inst::FpClass { rs1, .. } => v.push(Fp(rs1)),
            Inst::FrepO { rep, .. } | Inst::FrepI { rep, .. } => v.push(Int(rep)),
            Inst::Scfgwi { value, .. } => v.push(Int(value)),
            Inst::Scfgri { .. } => {}
            Inst::Dma { op, rs1, rs2, .. } => match op {
                DmaOp::Src | DmaOp::Dst | DmaOp::Str => {
                    v.push(Int(rs1));
                    v.push(Int(rs2));
                }
                DmaOp::Rep | DmaOp::CpyI => v.push(Int(rs1)),
                DmaOp::StatI => {}
            },
            Inst::CopiftCmp { rs1, rs2, .. } => {
                v.push(Fp(rs1));
                v.push(Fp(rs2));
            }
            Inst::CopiftCvtF2I { rs1, .. }
            | Inst::CopiftCvtI2F { rs1, .. }
            | Inst::CopiftClass { rs1, .. } => v.push(Fp(rs1)),
        }
    }

    /// The registers this instruction writes. Writes to `x0` are omitted
    /// (they are architectural no-ops).
    #[must_use]
    pub fn defs(&self) -> Vec<RegRef> {
        let mut v = Vec::with_capacity(1);
        self.for_each_def(|r| v.push(r));
        v
    }

    /// Visits the registers this instruction writes, without allocating —
    /// the hot-path face of [`defs`](Self::defs). Writes to `x0` are
    /// omitted, as in `defs`.
    pub fn for_each_def(&self, mut f: impl FnMut(RegRef)) {
        use RegRef::{Fp, Int};
        let mut v = Visit(&mut f);
        let mut int_def = |r: IntReg| {
            if !r.is_zero() {
                v.push(Int(r));
            }
        };
        match *self {
            Inst::Lui { rd, .. }
            | Inst::Auipc { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::OpImm { rd, .. }
            | Inst::OpReg { rd, .. }
            | Inst::Csr { rd, .. }
            | Inst::FpCmp { rd, .. }
            | Inst::FpCvtF2I { rd, .. }
            | Inst::FpMvF2X { rd, .. }
            | Inst::FpClass { rd, .. }
            | Inst::Scfgri { rd, .. } => int_def(rd),
            Inst::Dma { op, rd, .. } => {
                if matches!(op, DmaOp::CpyI | DmaOp::StatI) {
                    int_def(rd);
                }
            }
            Inst::Branch { .. }
            | Inst::Store { .. }
            | Inst::Fence
            | Inst::Ecall
            | Inst::Ebreak
            | Inst::Fsw { .. }
            | Inst::Fsd { .. }
            | Inst::FrepO { .. }
            | Inst::FrepI { .. }
            | Inst::Scfgwi { .. } => {}
            Inst::Flw { rd, .. }
            | Inst::Fld { rd, .. }
            | Inst::FpOp { rd, .. }
            | Inst::FpFma { rd, .. }
            | Inst::FpSgnj { rd, .. }
            | Inst::FpCvtI2F { rd, .. }
            | Inst::FpCvtF2F { rd, .. }
            | Inst::FpMvX2F { rd, .. }
            | Inst::CopiftCmp { rd, .. }
            | Inst::CopiftCvtF2I { rd, .. }
            | Inst::CopiftCvtI2F { rd, .. }
            | Inst::CopiftClass { rd, .. } => v.push(Fp(rd)),
        }
    }

    /// Memory access performed by this instruction, if any.
    #[must_use]
    pub fn mem_class(&self) -> Option<MemClass> {
        Some(match self {
            Inst::Load { op, .. } => MemClass::Load { bytes: op.size() },
            Inst::Store { op, .. } => MemClass::Store { bytes: op.size() },
            Inst::Flw { .. } => MemClass::FpLoad { bytes: 4 },
            Inst::Fld { .. } => MemClass::FpLoad { bytes: 8 },
            Inst::Fsw { .. } => MemClass::FpStore { bytes: 4 },
            Inst::Fsd { .. } => MemClass::FpStore { bytes: 8 },
            _ => return None,
        })
    }

    /// Whether this FP-domain instruction *writes* the integer register
    /// file — the cross-thread direction that serializes pseudo dual-issue
    /// execution (a COPIFT *Type 3* dependency source), e.g. `feq.d`,
    /// `fcvt.w.d`, `fmv.x.w`, `fclass.d`.
    #[must_use]
    pub fn fp_writes_int_rf(&self) -> bool {
        matches!(
            self,
            Inst::FpCmp { .. }
                | Inst::FpCvtF2I { .. }
                | Inst::FpMvF2X { .. }
                | Inst::FpClass { .. }
        )
    }

    /// Whether this FP-domain instruction *reads* the integer register file
    /// beyond a load/store base address, e.g. `fcvt.d.w`, `fmv.w.x`.
    #[must_use]
    pub fn fp_reads_int_rf(&self) -> bool {
        matches!(self, Inst::FpCvtI2F { .. } | Inst::FpMvX2F { .. })
    }

    /// Whether the instruction can legally appear in an FREP loop body:
    /// it must be executed by the FP subsystem and must not touch the integer
    /// register file. This is exactly the restriction the COPIFT ISA
    /// extensions (paper §II-B) lift for conversions/comparisons.
    #[must_use]
    pub fn frep_legal(&self) -> bool {
        if !self.is_fp() {
            return false;
        }
        if self.fp_writes_int_rf() || self.fp_reads_int_rf() {
            return false;
        }
        // FP loads/stores consume an integer base address; under FREP the
        // address would be stale. They are only legal when the access has
        // been mapped to an SSR (checked by the assembler/kernels, since
        // register ft0..ft2 semantics depend on the SSR-enable CSR).
        !matches!(self, Inst::Flw { .. } | Inst::Fld { .. } | Inst::Fsw { .. } | Inst::Fsd { .. })
    }

    /// Whether this is an integer multiply executed in the shared `muldiv`
    /// unit (used by the simulator's write-back port hazard model).
    #[must_use]
    pub fn is_int_mul(&self) -> bool {
        matches!(self, Inst::OpReg { op, .. } if op.is_muldiv() && !op.is_div())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::*;

    #[test]
    fn def_use_int_ops() {
        let add = Inst::OpReg { op: AluOp::Add, rd: IntReg::A0, rs1: IntReg::A1, rs2: IntReg::A2 };
        assert_eq!(add.uses(), vec![RegRef::Int(IntReg::A1), RegRef::Int(IntReg::A2)]);
        assert_eq!(add.defs(), vec![RegRef::Int(IntReg::A0)]);
        assert!(Inst::NOP.defs().is_empty(), "writes to x0 are not defs");
    }

    #[test]
    fn def_use_fp_load_store() {
        let fld = Inst::Fld { rd: FpReg::FA3, rs1: IntReg::A3, offset: 0 };
        assert_eq!(fld.uses(), vec![RegRef::Int(IntReg::A3)]);
        assert_eq!(fld.defs(), vec![RegRef::Fp(FpReg::FA3)]);
        let fsd = Inst::Fsd { rs2: FpReg::FA4, rs1: IntReg::A4, offset: 8 };
        assert_eq!(fsd.uses(), vec![RegRef::Fp(FpReg::FA4), RegRef::Int(IntReg::A4)]);
        assert!(fsd.defs().is_empty());
    }

    #[test]
    fn def_use_fma() {
        let fma = Inst::FpFma {
            op: FmaOp::Madd,
            fmt: FpFmt::D,
            rd: FpReg::FA4,
            rs1: FpReg::FA2,
            rs2: FpReg::FA1,
            rs3: FpReg::FA3,
        };
        assert_eq!(fma.uses().len(), 3);
        assert_eq!(fma.defs(), vec![RegRef::Fp(FpReg::FA4)]);
        assert_eq!(fma.class(), InstClass::FpMulAdd);
    }

    #[test]
    fn type3_sources_detected() {
        let cmp = Inst::FpCmp {
            op: FpCmpOp::Lt,
            fmt: FpFmt::D,
            rd: IntReg::A0,
            rs1: FpReg::FA0,
            rs2: FpReg::FA1,
        };
        assert!(cmp.fp_writes_int_rf());
        assert!(!cmp.frep_legal());

        let cvt =
            Inst::FpCvtI2F { from: IntCvt::W, fmt: FpFmt::D, rd: FpReg::FA0, rs1: IntReg::A0 };
        assert!(cvt.fp_reads_int_rf());
        assert!(!cvt.frep_legal());

        // The COPIFT replacements are FREP-legal.
        let ccmp =
            Inst::CopiftCmp { op: FpCmpOp::Lt, rd: FpReg::FA0, rs1: FpReg::FA1, rs2: FpReg::FA2 };
        assert!(ccmp.frep_legal());
        let ccvt = Inst::CopiftCvtI2F { from: IntCvt::W, rd: FpReg::FA0, rs1: FpReg::FA1 };
        assert!(ccvt.frep_legal());
    }

    #[test]
    fn frep_legality_of_loads() {
        let fld = Inst::Fld { rd: FpReg::FA0, rs1: IntReg::A0, offset: 0 };
        assert!(!fld.frep_legal(), "explicit FP loads are not FREP-legal (must use SSRs)");
        let fadd = Inst::FpOp {
            op: FpAluOp::Add,
            fmt: FpFmt::D,
            rd: FpReg::FA0,
            rs1: FpReg::FT0,
            rs2: FpReg::FA1,
        };
        assert!(fadd.frep_legal());
    }

    #[test]
    fn classes() {
        assert_eq!(Inst::NOP.class(), InstClass::IntAlu);
        let mul = Inst::OpReg { op: AluOp::Mul, rd: IntReg::A0, rs1: IntReg::A1, rs2: IntReg::A2 };
        assert_eq!(mul.class(), InstClass::IntMul);
        assert!(mul.is_int_mul());
        let div = Inst::OpReg { op: AluOp::Div, rd: IntReg::A0, rs1: IntReg::A1, rs2: IntReg::A2 };
        assert_eq!(div.class(), InstClass::IntDiv);
        assert!(!div.is_int_mul());
        let fdiv = Inst::FpOp {
            op: FpAluOp::Div,
            fmt: FpFmt::D,
            rd: FpReg::FA0,
            rs1: FpReg::FA1,
            rs2: FpReg::FA2,
        };
        assert_eq!(fdiv.class(), InstClass::FpDivSqrt);
        let frep = Inst::FrepO { rep: IntReg::T0, max_inst: 1, stagger_max: 0, stagger_mask: 0 };
        assert_eq!(frep.class(), InstClass::Frep);
    }

    #[test]
    fn mem_class() {
        let lw = Inst::Load { op: LoadOp::Lw, rd: IntReg::A0, rs1: IntReg::A1, offset: 0 };
        assert_eq!(lw.mem_class(), Some(MemClass::Load { bytes: 4 }));
        let fsd = Inst::Fsd { rs2: FpReg::FA0, rs1: IntReg::A0, offset: 0 };
        assert_eq!(fsd.mem_class(), Some(MemClass::FpStore { bytes: 8 }));
        assert_eq!(Inst::NOP.mem_class(), None);
    }
}
