//! Control-and-status register addresses and SSR configuration word layout.

/// SSR enable CSR (Snitch: setting bit 0 remaps `ft0..ft2` to streams).
pub const CSR_SSR: u16 = 0x7C0;

/// FPU-synchronisation CSR: reading it stalls the integer core until the FP
/// subsystem has drained (offload FIFO, sequencer and FPU pipeline empty).
/// Models Snitch's FPU fence used at kernel epilogues.
pub const CSR_FPU_FENCE: u16 = 0x7C2;

/// Cluster hardware-barrier CSR: reading it stalls the hart until every
/// other hart in the cluster has either reached the barrier or halted, then
/// releases all waiting harts in the same cycle. Models the Snitch cluster's
/// `hw_barrier` register.
pub const CSR_BARRIER: u16 = 0x7C3;

/// Cycle counter (read-only).
pub const CSR_MCYCLE: u16 = 0xB00;

/// Retired-instruction counter (read-only).
pub const CSR_MINSTRET: u16 = 0xB02;

/// Hart id (read-only): the compute core's index within the cluster.
pub const CSR_MHARTID: u16 = 0xF14;

/// Cluster id (read-only, custom machine-mode space): the index of the
/// core's cluster within the system. Together with [`CSR_MHARTID`] it lets
/// SPMD programs address the full (cluster, hart) grid.
pub const CSR_CLUSTER_ID: u16 = 0xFC0;

/// Number of SSR data movers in a Snitch core.
pub const NUM_SSRS: usize = 3;

/// Per-streamer configuration word indices for `scfgwi`/`scfgri`.
///
/// The 12-bit config address is `(word << 4) | ssr_index`, mirroring the
/// reg/SSR split of Snitch's SSR configuration space.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SsrCfgWord {
    /// Status/control: bit 0 = write mode (0 = read stream, 1 = write
    /// stream), bits 2:1 = active dimension count minus one, bit 3 =
    /// indirection (ISSR) enable.
    Status,
    /// Repetition count minus one (each element served `rep + 1` times).
    Repeat,
    /// Loop bound minus one for dimension `d` (0..4).
    Bound(u8),
    /// Byte stride for dimension `d` (0..4).
    Stride(u8),
    /// Index base address (ISSR mode).
    IdxBase,
    /// Index element size in bytes log2 (ISSR mode: 1, 2 or 4).
    IdxSize,
    /// Data base address; writing this word arms the streamer.
    Base,
}

impl SsrCfgWord {
    /// Encodes this word selector together with an SSR index into the 12-bit
    /// `scfgwi`/`scfgri` address.
    ///
    /// # Panics
    ///
    /// Panics if `ssr >= NUM_SSRS` or a dimension is out of range.
    #[must_use]
    pub fn addr(self, ssr: usize) -> u16 {
        assert!(ssr < NUM_SSRS, "ssr index {ssr} out of range");
        let word: u16 = match self {
            SsrCfgWord::Status => 0,
            SsrCfgWord::Repeat => 1,
            SsrCfgWord::Bound(d) => {
                assert!(d < 4, "ssr dimension {d} out of range");
                2 + u16::from(d)
            }
            SsrCfgWord::Stride(d) => {
                assert!(d < 4, "ssr dimension {d} out of range");
                6 + u16::from(d)
            }
            SsrCfgWord::IdxBase => 10,
            SsrCfgWord::IdxSize => 11,
            SsrCfgWord::Base => 12,
        };
        (word << 4) | ssr as u16
    }

    /// Decodes a 12-bit config address back into `(word, ssr_index)`.
    #[must_use]
    pub fn from_addr(addr: u16) -> Option<(Self, usize)> {
        let ssr = (addr & 0xf) as usize;
        if ssr >= NUM_SSRS {
            return None;
        }
        let word = match addr >> 4 {
            0 => SsrCfgWord::Status,
            1 => SsrCfgWord::Repeat,
            d @ 2..=5 => SsrCfgWord::Bound((d - 2) as u8),
            d @ 6..=9 => SsrCfgWord::Stride((d - 6) as u8),
            10 => SsrCfgWord::IdxBase,
            11 => SsrCfgWord::IdxSize,
            12 => SsrCfgWord::Base,
            _ => return None,
        };
        Some((word, ssr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_addr_roundtrip() {
        for ssr in 0..NUM_SSRS {
            for word in [
                SsrCfgWord::Status,
                SsrCfgWord::Repeat,
                SsrCfgWord::Bound(0),
                SsrCfgWord::Bound(3),
                SsrCfgWord::Stride(0),
                SsrCfgWord::Stride(3),
                SsrCfgWord::IdxBase,
                SsrCfgWord::IdxSize,
                SsrCfgWord::Base,
            ] {
                let addr = word.addr(ssr);
                assert_eq!(SsrCfgWord::from_addr(addr), Some((word, ssr)));
            }
        }
    }

    #[test]
    fn invalid_addresses_rejected() {
        assert_eq!(SsrCfgWord::from_addr(0x3), None, "ssr index 3 does not exist");
        assert_eq!(SsrCfgWord::from_addr(0xd0), None, "word 13 does not exist");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn addr_rejects_bad_ssr() {
        let _ = SsrCfgWord::Status.addr(3);
    }
}
