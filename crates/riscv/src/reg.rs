//! Integer and floating-point register types.
//!
//! RISC-V defines two architecturally separate register files: the integer
//! registers `x0..x31` and (with the F/D extensions) the floating-point
//! registers `f0..f31`. This separation is the key property COPIFT builds on
//! ("integer and FP instructions operate mostly on independent sets of
//! registers"), so the two files are distinct types here and cannot be
//! confused at compile time.

use std::fmt;

/// An integer register `x0..x31`.
///
/// `x0` is hard-wired to zero. Associated constants expose both the raw names
/// and the standard ABI names (`A0`, `T0`, `S0`, ...).
///
/// # Example
///
/// ```
/// use snitch_riscv::reg::IntReg;
/// assert_eq!(IntReg::A0.index(), 10);
/// assert_eq!(IntReg::A0.to_string(), "a0");
/// assert_eq!(IntReg::new(10), IntReg::A0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntReg(u8);

/// A floating-point register `f0..f31`.
///
/// With SSRs enabled, reads and writes of `ft0`/`ft1`/`ft2` (i.e. `f0..f2`)
/// are redirected to the stream semantic registers.
///
/// # Example
///
/// ```
/// use snitch_riscv::reg::FpReg;
/// assert_eq!(FpReg::FT0.index(), 0);
/// assert!(FpReg::FT0.is_ssr_candidate());
/// assert!(!FpReg::FA0.is_ssr_candidate());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FpReg(u8);

impl IntReg {
    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!(index < 32, "integer register index out of range");
        IntReg(index)
    }

    /// The register's index in `0..32`.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hard-wired zero register `x0`.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// All 32 integer registers in index order.
    pub fn all() -> impl Iterator<Item = IntReg> {
        (0..32).map(IntReg)
    }

    pub const ZERO: IntReg = IntReg(0);
    pub const RA: IntReg = IntReg(1);
    pub const SP: IntReg = IntReg(2);
    pub const GP: IntReg = IntReg(3);
    pub const TP: IntReg = IntReg(4);
    pub const T0: IntReg = IntReg(5);
    pub const T1: IntReg = IntReg(6);
    pub const T2: IntReg = IntReg(7);
    pub const S0: IntReg = IntReg(8);
    pub const S1: IntReg = IntReg(9);
    pub const A0: IntReg = IntReg(10);
    pub const A1: IntReg = IntReg(11);
    pub const A2: IntReg = IntReg(12);
    pub const A3: IntReg = IntReg(13);
    pub const A4: IntReg = IntReg(14);
    pub const A5: IntReg = IntReg(15);
    pub const A6: IntReg = IntReg(16);
    pub const A7: IntReg = IntReg(17);
    pub const S2: IntReg = IntReg(18);
    pub const S3: IntReg = IntReg(19);
    pub const S4: IntReg = IntReg(20);
    pub const S5: IntReg = IntReg(21);
    pub const S6: IntReg = IntReg(22);
    pub const S7: IntReg = IntReg(23);
    pub const S8: IntReg = IntReg(24);
    pub const S9: IntReg = IntReg(25);
    pub const S10: IntReg = IntReg(26);
    pub const S11: IntReg = IntReg(27);
    pub const T3: IntReg = IntReg(28);
    pub const T4: IntReg = IntReg(29);
    pub const T5: IntReg = IntReg(30);
    pub const T6: IntReg = IntReg(31);
}

impl FpReg {
    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!(index < 32, "fp register index out of range");
        FpReg(index)
    }

    /// The register's index in `0..32`.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this register is remapped to a stream when SSRs are enabled
    /// (`ft0`/`ft1`/`ft2`, i.e. `f0..f2`).
    #[must_use]
    pub fn is_ssr_candidate(self) -> bool {
        self.0 < 3
    }

    /// All 32 floating-point registers in index order.
    pub fn all() -> impl Iterator<Item = FpReg> {
        (0..32).map(FpReg)
    }

    pub const FT0: FpReg = FpReg(0);
    pub const FT1: FpReg = FpReg(1);
    pub const FT2: FpReg = FpReg(2);
    pub const FT3: FpReg = FpReg(3);
    pub const FT4: FpReg = FpReg(4);
    pub const FT5: FpReg = FpReg(5);
    pub const FT6: FpReg = FpReg(6);
    pub const FT7: FpReg = FpReg(7);
    pub const FS0: FpReg = FpReg(8);
    pub const FS1: FpReg = FpReg(9);
    pub const FA0: FpReg = FpReg(10);
    pub const FA1: FpReg = FpReg(11);
    pub const FA2: FpReg = FpReg(12);
    pub const FA3: FpReg = FpReg(13);
    pub const FA4: FpReg = FpReg(14);
    pub const FA5: FpReg = FpReg(15);
    pub const FA6: FpReg = FpReg(16);
    pub const FA7: FpReg = FpReg(17);
    pub const FS2: FpReg = FpReg(18);
    pub const FS3: FpReg = FpReg(19);
    pub const FS4: FpReg = FpReg(20);
    pub const FS5: FpReg = FpReg(21);
    pub const FS6: FpReg = FpReg(22);
    pub const FS7: FpReg = FpReg(23);
    pub const FS8: FpReg = FpReg(24);
    pub const FS9: FpReg = FpReg(25);
    pub const FS10: FpReg = FpReg(26);
    pub const FS11: FpReg = FpReg(27);
    pub const FT8: FpReg = FpReg(28);
    pub const FT9: FpReg = FpReg(29);
    pub const FT10: FpReg = FpReg(30);
    pub const FT11: FpReg = FpReg(31);
}

const INT_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

const FP_NAMES: [&str; 32] = [
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7", "fs0", "fs1", "fa0", "fa1", "fa2",
    "fa3", "fa4", "fa5", "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7", "fs8", "fs9",
    "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
];

impl fmt::Display for IntReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(INT_NAMES[self.0 as usize])
    }
}

impl fmt::Debug for IntReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IntReg({self})")
    }
}

impl fmt::Display for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(FP_NAMES[self.0 as usize])
    }
}

impl fmt::Debug for FpReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FpReg({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_names_map_to_indices() {
        assert_eq!(IntReg::ZERO.index(), 0);
        assert_eq!(IntReg::RA.index(), 1);
        assert_eq!(IntReg::SP.index(), 2);
        assert_eq!(IntReg::T0.index(), 5);
        assert_eq!(IntReg::S0.index(), 8);
        assert_eq!(IntReg::A7.index(), 17);
        assert_eq!(IntReg::S11.index(), 27);
        assert_eq!(IntReg::T6.index(), 31);
        assert_eq!(FpReg::FT0.index(), 0);
        assert_eq!(FpReg::FS0.index(), 8);
        assert_eq!(FpReg::FA7.index(), 17);
        assert_eq!(FpReg::FT11.index(), 31);
    }

    #[test]
    fn display_names() {
        assert_eq!(IntReg::ZERO.to_string(), "zero");
        assert_eq!(IntReg::new(15).to_string(), "a5");
        assert_eq!(FpReg::new(0).to_string(), "ft0");
        assert_eq!(FpReg::new(26).to_string(), "fs10");
    }

    #[test]
    fn zero_detection() {
        assert!(IntReg::ZERO.is_zero());
        assert!(!IntReg::A0.is_zero());
    }

    #[test]
    fn ssr_candidates_are_ft0_to_ft2() {
        let cands: Vec<_> = FpReg::all().filter(|r| r.is_ssr_candidate()).collect();
        assert_eq!(cands, vec![FpReg::FT0, FpReg::FT1, FpReg::FT2]);
    }

    #[test]
    fn all_iterates_each_register_once() {
        assert_eq!(IntReg::all().count(), 32);
        assert_eq!(FpReg::all().count(), 32);
        let mut seen = [false; 32];
        for r in IntReg::all() {
            assert!(!seen[r.index() as usize]);
            seen[r.index() as usize] = true;
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = IntReg::new(32);
    }
}
