//! Sub-operation enums shared by the instruction type.
//!
//! Grouping mnemonics that share an encoding format and a pipeline behaviour
//! into small enums keeps [`Inst`](crate::inst::Inst) compact and lets the
//! simulator and the COPIFT analyses match on whole families at once.

use std::fmt;

/// Conditional branch comparisons (`BRANCH` major opcode).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchOp {
    /// `beq`
    Eq,
    /// `bne`
    Ne,
    /// `blt`
    Lt,
    /// `bge`
    Ge,
    /// `bltu`
    Ltu,
    /// `bgeu`
    Geu,
}

impl BranchOp {
    /// The `funct3` field encoding this comparison.
    #[must_use]
    pub fn funct3(self) -> u32 {
        match self {
            BranchOp::Eq => 0b000,
            BranchOp::Ne => 0b001,
            BranchOp::Lt => 0b100,
            BranchOp::Ge => 0b101,
            BranchOp::Ltu => 0b110,
            BranchOp::Geu => 0b111,
        }
    }

    /// Inverse of [`funct3`](Self::funct3).
    #[must_use]
    pub fn from_funct3(funct3: u32) -> Option<Self> {
        Some(match funct3 {
            0b000 => BranchOp::Eq,
            0b001 => BranchOp::Ne,
            0b100 => BranchOp::Lt,
            0b101 => BranchOp::Ge,
            0b110 => BranchOp::Ltu,
            0b111 => BranchOp::Geu,
            _ => return None,
        })
    }

    /// Evaluates the branch condition on two register values.
    #[must_use]
    pub fn taken(self, lhs: u32, rhs: u32) -> bool {
        match self {
            BranchOp::Eq => lhs == rhs,
            BranchOp::Ne => lhs != rhs,
            BranchOp::Lt => (lhs as i32) < (rhs as i32),
            BranchOp::Ge => (lhs as i32) >= (rhs as i32),
            BranchOp::Ltu => lhs < rhs,
            BranchOp::Geu => lhs >= rhs,
        }
    }
}

/// Integer load widths (`LOAD` major opcode).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LoadOp {
    /// `lb`: sign-extended byte
    Lb,
    /// `lh`: sign-extended halfword
    Lh,
    /// `lw`: word
    Lw,
    /// `lbu`: zero-extended byte
    Lbu,
    /// `lhu`: zero-extended halfword
    Lhu,
}

impl LoadOp {
    /// The `funct3` field encoding this width.
    #[must_use]
    pub fn funct3(self) -> u32 {
        match self {
            LoadOp::Lb => 0b000,
            LoadOp::Lh => 0b001,
            LoadOp::Lw => 0b010,
            LoadOp::Lbu => 0b100,
            LoadOp::Lhu => 0b101,
        }
    }

    /// Inverse of [`funct3`](Self::funct3).
    #[must_use]
    pub fn from_funct3(funct3: u32) -> Option<Self> {
        Some(match funct3 {
            0b000 => LoadOp::Lb,
            0b001 => LoadOp::Lh,
            0b010 => LoadOp::Lw,
            0b100 => LoadOp::Lbu,
            0b101 => LoadOp::Lhu,
            _ => return None,
        })
    }

    /// Access size in bytes.
    #[must_use]
    pub fn size(self) -> u32 {
        match self {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw => 4,
        }
    }
}

/// Integer store widths (`STORE` major opcode).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StoreOp {
    /// `sb`
    Sb,
    /// `sh`
    Sh,
    /// `sw`
    Sw,
}

impl StoreOp {
    /// The `funct3` field encoding this width.
    #[must_use]
    pub fn funct3(self) -> u32 {
        match self {
            StoreOp::Sb => 0b000,
            StoreOp::Sh => 0b001,
            StoreOp::Sw => 0b010,
        }
    }

    /// Inverse of [`funct3`](Self::funct3).
    #[must_use]
    pub fn from_funct3(funct3: u32) -> Option<Self> {
        Some(match funct3 {
            0b000 => StoreOp::Sb,
            0b001 => StoreOp::Sh,
            0b010 => StoreOp::Sw,
            _ => return None,
        })
    }

    /// Access size in bytes.
    #[must_use]
    pub fn size(self) -> u32 {
        match self {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
        }
    }
}

/// Register-immediate ALU operations (`OP-IMM` major opcode).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluImmOp {
    /// `addi`
    Addi,
    /// `slti`
    Slti,
    /// `sltiu`
    Sltiu,
    /// `xori`
    Xori,
    /// `ori`
    Ori,
    /// `andi`
    Andi,
    /// `slli` (shamt in `imm[4:0]`)
    Slli,
    /// `srli`
    Srli,
    /// `srai`
    Srai,
}

impl AluImmOp {
    /// Evaluates the operation.
    #[must_use]
    pub fn eval(self, rs1: u32, imm: i32) -> u32 {
        let sh = (imm as u32) & 0x1f;
        match self {
            AluImmOp::Addi => rs1.wrapping_add(imm as u32),
            AluImmOp::Slti => u32::from((rs1 as i32) < imm),
            AluImmOp::Sltiu => u32::from(rs1 < imm as u32),
            AluImmOp::Xori => rs1 ^ imm as u32,
            AluImmOp::Ori => rs1 | imm as u32,
            AluImmOp::Andi => rs1 & imm as u32,
            AluImmOp::Slli => rs1 << sh,
            AluImmOp::Srli => rs1 >> sh,
            AluImmOp::Srai => ((rs1 as i32) >> sh) as u32,
        }
    }
}

/// Register-register ALU operations, including the "M" extension
/// (`OP` major opcode).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// `add`
    Add,
    /// `sub`
    Sub,
    /// `sll`
    Sll,
    /// `slt`
    Slt,
    /// `sltu`
    Sltu,
    /// `xor`
    Xor,
    /// `srl`
    Srl,
    /// `sra`
    Sra,
    /// `or`
    Or,
    /// `and`
    And,
    /// `mul` (M extension)
    Mul,
    /// `mulh`
    Mulh,
    /// `mulhsu`
    Mulhsu,
    /// `mulhu`
    Mulhu,
    /// `div`
    Div,
    /// `divu`
    Divu,
    /// `rem`
    Rem,
    /// `remu`
    Remu,
}

impl AluOp {
    /// Whether the operation belongs to the "M" multiply/divide extension
    /// (and therefore executes in the multi-cycle `muldiv` unit).
    #[must_use]
    pub fn is_muldiv(self) -> bool {
        matches!(
            self,
            AluOp::Mul
                | AluOp::Mulh
                | AluOp::Mulhsu
                | AluOp::Mulhu
                | AluOp::Div
                | AluOp::Divu
                | AluOp::Rem
                | AluOp::Remu
        )
    }

    /// Whether the operation is a divide/remainder (long-latency).
    #[must_use]
    pub fn is_div(self) -> bool {
        matches!(self, AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu)
    }

    /// Evaluates the operation. Division follows the RISC-V corner-case
    /// rules explicitly (divide-by-zero yields all-ones, overflow wraps),
    /// which is clearer here than `checked_div` chains.
    #[must_use]
    #[allow(clippy::manual_div_ceil, clippy::if_same_then_else, clippy::manual_checked_ops)]
    pub fn eval(self, rs1: u32, rs2: u32) -> u32 {
        let sh = rs2 & 0x1f;
        match self {
            AluOp::Add => rs1.wrapping_add(rs2),
            AluOp::Sub => rs1.wrapping_sub(rs2),
            AluOp::Sll => rs1 << sh,
            AluOp::Slt => u32::from((rs1 as i32) < (rs2 as i32)),
            AluOp::Sltu => u32::from(rs1 < rs2),
            AluOp::Xor => rs1 ^ rs2,
            AluOp::Srl => rs1 >> sh,
            AluOp::Sra => ((rs1 as i32) >> sh) as u32,
            AluOp::Or => rs1 | rs2,
            AluOp::And => rs1 & rs2,
            AluOp::Mul => rs1.wrapping_mul(rs2),
            AluOp::Mulh => ((i64::from(rs1 as i32) * i64::from(rs2 as i32)) >> 32) as u32,
            AluOp::Mulhsu => ((i64::from(rs1 as i32) * i64::from(rs2)) >> 32) as u32,
            AluOp::Mulhu => ((u64::from(rs1) * u64::from(rs2)) >> 32) as u32,
            AluOp::Div => {
                if rs2 == 0 {
                    u32::MAX
                } else if rs1 as i32 == i32::MIN && rs2 as i32 == -1 {
                    rs1
                } else {
                    ((rs1 as i32) / (rs2 as i32)) as u32
                }
            }
            AluOp::Divu => {
                if rs2 == 0 {
                    u32::MAX
                } else {
                    rs1 / rs2
                }
            }
            AluOp::Rem => {
                if rs2 == 0 {
                    rs1
                } else if rs1 as i32 == i32::MIN && rs2 as i32 == -1 {
                    0
                } else {
                    ((rs1 as i32) % (rs2 as i32)) as u32
                }
            }
            AluOp::Remu => {
                if rs2 == 0 {
                    rs1
                } else {
                    rs1 % rs2
                }
            }
        }
    }
}

/// Floating-point formats supported by the F/D extensions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FpFmt {
    /// Single precision (32-bit, "F" extension).
    S,
    /// Double precision (64-bit, "D" extension).
    D,
}

impl FpFmt {
    /// The `fmt` field value used inside OP-FP `funct7` encodings.
    #[must_use]
    pub fn field(self) -> u32 {
        match self {
            FpFmt::S => 0,
            FpFmt::D => 1,
        }
    }

    /// Inverse of [`field`](Self::field).
    #[must_use]
    pub fn from_field(field: u32) -> Option<Self> {
        Some(match field {
            0 => FpFmt::S,
            1 => FpFmt::D,
            _ => return None,
        })
    }

    /// Operand width in bytes.
    #[must_use]
    pub fn size(self) -> u32 {
        match self {
            FpFmt::S => 4,
            FpFmt::D => 8,
        }
    }

    /// Mnemonic suffix (`"s"` or `"d"`).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            FpFmt::S => "s",
            FpFmt::D => "d",
        }
    }
}

/// Two- and one-operand floating-point arithmetic (`OP-FP`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FpAluOp {
    /// `fadd`
    Add,
    /// `fsub`
    Sub,
    /// `fmul`
    Mul,
    /// `fdiv`
    Div,
    /// `fsqrt` (ignores `rs2`)
    Sqrt,
    /// `fmin`
    Min,
    /// `fmax`
    Max,
}

/// Fused multiply-add family (dedicated major opcodes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FmaOp {
    /// `fmadd`: `rs1*rs2 + rs3`
    Madd,
    /// `fmsub`: `rs1*rs2 - rs3`
    Msub,
    /// `fnmsub`: `-(rs1*rs2) + rs3`
    Nmsub,
    /// `fnmadd`: `-(rs1*rs2) - rs3`
    Nmadd,
}

impl FmaOp {
    /// The major opcode carrying this operation.
    #[must_use]
    pub fn opcode(self) -> u32 {
        match self {
            FmaOp::Madd => 0x43,
            FmaOp::Msub => 0x47,
            FmaOp::Nmsub => 0x4B,
            FmaOp::Nmadd => 0x4F,
        }
    }

    /// Evaluates the fused operation on `f64` operands.
    #[must_use]
    pub fn eval_f64(self, a: f64, b: f64, c: f64) -> f64 {
        match self {
            FmaOp::Madd => a.mul_add(b, c),
            FmaOp::Msub => a.mul_add(b, -c),
            FmaOp::Nmsub => (-a).mul_add(b, c),
            FmaOp::Nmadd => (-a).mul_add(b, -c),
        }
    }

    /// Evaluates the fused operation on `f32` operands.
    #[must_use]
    pub fn eval_f32(self, a: f32, b: f32, c: f32) -> f32 {
        match self {
            FmaOp::Madd => a.mul_add(b, c),
            FmaOp::Msub => a.mul_add(b, -c),
            FmaOp::Nmsub => (-a).mul_add(b, c),
            FmaOp::Nmadd => (-a).mul_add(b, -c),
        }
    }
}

/// Sign-injection operations (`fsgnj`, `fsgnjn`, `fsgnjx`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SgnjOp {
    /// `fsgnj` (also `fmv.{s,d}` when `rs1 == rs2`)
    Sgnj,
    /// `fsgnjn` (also `fneg`)
    Sgnjn,
    /// `fsgnjx` (also `fabs`)
    Sgnjx,
}

impl SgnjOp {
    /// The `funct3` field encoding this operation.
    #[must_use]
    pub fn funct3(self) -> u32 {
        match self {
            SgnjOp::Sgnj => 0b000,
            SgnjOp::Sgnjn => 0b001,
            SgnjOp::Sgnjx => 0b010,
        }
    }
}

/// Floating-point comparisons (`feq`, `flt`, `fle`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FpCmpOp {
    /// `feq`
    Eq,
    /// `flt`
    Lt,
    /// `fle`
    Le,
}

impl FpCmpOp {
    /// The `funct3` field encoding this comparison.
    #[must_use]
    pub fn funct3(self) -> u32 {
        match self {
            FpCmpOp::Le => 0b000,
            FpCmpOp::Lt => 0b001,
            FpCmpOp::Eq => 0b010,
        }
    }

    /// Inverse of [`funct3`](Self::funct3).
    #[must_use]
    pub fn from_funct3(funct3: u32) -> Option<Self> {
        Some(match funct3 {
            0b000 => FpCmpOp::Le,
            0b001 => FpCmpOp::Lt,
            0b010 => FpCmpOp::Eq,
            _ => return None,
        })
    }

    /// Evaluates the comparison on `f64` operands (quiet for `feq`,
    /// signaling semantics are not modelled).
    #[must_use]
    pub fn eval_f64(self, a: f64, b: f64) -> bool {
        match self {
            FpCmpOp::Eq => a == b,
            FpCmpOp::Lt => a < b,
            FpCmpOp::Le => a <= b,
        }
    }

    /// Evaluates the comparison on `f32` operands.
    #[must_use]
    pub fn eval_f32(self, a: f32, b: f32) -> bool {
        match self {
            FpCmpOp::Eq => a == b,
            FpCmpOp::Lt => a < b,
            FpCmpOp::Le => a <= b,
        }
    }

    /// Mnemonic stem (`"feq"`, `"flt"`, `"fle"`).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpCmpOp::Eq => "feq",
            FpCmpOp::Lt => "flt",
            FpCmpOp::Le => "fle",
        }
    }
}

/// Integer operand type of a conversion (`w` = signed, `wu` = unsigned).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IntCvt {
    /// Signed 32-bit (`.w`)
    W,
    /// Unsigned 32-bit (`.wu`)
    Wu,
}

/// `fcvt.w.d` semantics: truncation toward zero with the RISC-V saturation
/// rules (spec table "FCVT behavior"): NaN and +overflow convert to
/// `i32::MAX`, −overflow to `i32::MIN`. The NaN arm intentionally matches
/// the +overflow arm — RISC-V mandates the *maximum* value for NaN, not 0.
#[must_use]
#[allow(clippy::if_same_then_else)]
pub fn f64_to_i32(v: f64) -> i32 {
    if v.is_nan() {
        i32::MAX
    } else if v >= i32::MAX as f64 {
        i32::MAX
    } else if v <= i32::MIN as f64 {
        i32::MIN
    } else {
        v as i32
    }
}

/// `fcvt.wu.d` semantics: truncation toward zero with RISC-V saturation —
/// NaN and +overflow convert to `u32::MAX`, anything at or below zero
/// (after truncation) to 0.
#[must_use]
#[allow(clippy::if_same_then_else)]
pub fn f64_to_u32(v: f64) -> u32 {
    if v.is_nan() {
        u32::MAX
    } else if v >= u32::MAX as f64 {
        u32::MAX
    } else if v <= 0.0 {
        // (-1, 0) truncates toward zero to 0; ≤ -1 saturates to 0.
        0
    } else {
        v as u32
    }
}

impl IntCvt {
    /// The `rs2` discriminator field in conversion encodings.
    #[must_use]
    pub fn field(self) -> u32 {
        match self {
            IntCvt::W => 0,
            IntCvt::Wu => 1,
        }
    }

    /// Inverse of [`field`](Self::field).
    #[must_use]
    pub fn from_field(field: u32) -> Option<Self> {
        Some(match field {
            0 => IntCvt::W,
            1 => IntCvt::Wu,
            _ => return None,
        })
    }

    /// Mnemonic suffix (`"w"` or `"wu"`).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            IntCvt::W => "w",
            IntCvt::Wu => "wu",
        }
    }
}

/// CSR access operations (Zicsr).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CsrOp {
    /// `csrrw`
    Rw,
    /// `csrrs`
    Rs,
    /// `csrrc`
    Rc,
    /// `csrrwi`
    Rwi,
    /// `csrrsi`
    Rsi,
    /// `csrrci`
    Rci,
}

impl CsrOp {
    /// The `funct3` field encoding this operation.
    #[must_use]
    pub fn funct3(self) -> u32 {
        match self {
            CsrOp::Rw => 0b001,
            CsrOp::Rs => 0b010,
            CsrOp::Rc => 0b011,
            CsrOp::Rwi => 0b101,
            CsrOp::Rsi => 0b110,
            CsrOp::Rci => 0b111,
        }
    }

    /// Inverse of [`funct3`](Self::funct3).
    #[must_use]
    pub fn from_funct3(funct3: u32) -> Option<Self> {
        Some(match funct3 {
            0b001 => CsrOp::Rw,
            0b010 => CsrOp::Rs,
            0b011 => CsrOp::Rc,
            0b101 => CsrOp::Rwi,
            0b110 => CsrOp::Rsi,
            0b111 => CsrOp::Rci,
            _ => return None,
        })
    }

    /// Whether the source operand is a 5-bit immediate rather than `rs1`.
    #[must_use]
    pub fn is_imm(self) -> bool {
        matches!(self, CsrOp::Rwi | CsrOp::Rsi | CsrOp::Rci)
    }
}

/// Snitch xdma instructions (cluster DMA programming).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DmaOp {
    /// `dmsrc rs1, rs2`: source address (low, high)
    Src,
    /// `dmdst rs1, rs2`: destination address (low, high)
    Dst,
    /// `dmstr rs1, rs2`: source / destination strides
    Str,
    /// `dmrep rs1`: repetition count (2-D transfers)
    Rep,
    /// `dmcpyi rd, rs1, imm`: start transfer of `rs1` bytes, returns id
    CpyI,
    /// `dmstati rd, imm`: poll transfer status
    StatI,
}

impl fmt::Display for DmaOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DmaOp::Src => "dmsrc",
            DmaOp::Dst => "dmdst",
            DmaOp::Str => "dmstr",
            DmaOp::Rep => "dmrep",
            DmaOp::CpyI => "dmcpyi",
            DmaOp::StatI => "dmstati",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_funct3_roundtrip() {
        for op in
            [BranchOp::Eq, BranchOp::Ne, BranchOp::Lt, BranchOp::Ge, BranchOp::Ltu, BranchOp::Geu]
        {
            assert_eq!(BranchOp::from_funct3(op.funct3()), Some(op));
        }
        assert_eq!(BranchOp::from_funct3(0b010), None);
    }

    #[test]
    fn branch_semantics() {
        assert!(BranchOp::Eq.taken(5, 5));
        assert!(!BranchOp::Eq.taken(5, 6));
        assert!(BranchOp::Lt.taken(-1i32 as u32, 0));
        assert!(!BranchOp::Ltu.taken(-1i32 as u32, 0));
        assert!(BranchOp::Geu.taken(-1i32 as u32, 0));
        assert!(BranchOp::Ge.taken(3, 3));
    }

    #[test]
    fn alu_imm_semantics() {
        assert_eq!(AluImmOp::Addi.eval(7, -3), 4);
        assert_eq!(AluImmOp::Andi.eval(0xff, 0x1f), 0x1f);
        assert_eq!(AluImmOp::Slli.eval(1, 5), 32);
        assert_eq!(AluImmOp::Srli.eval(0x8000_0000, 31), 1);
        assert_eq!(AluImmOp::Srai.eval(0x8000_0000, 31), 0xffff_ffff);
        assert_eq!(AluImmOp::Slti.eval(-5i32 as u32, -4), 1);
        assert_eq!(AluImmOp::Sltiu.eval(3, 4), 1);
        assert_eq!(AluImmOp::Xori.eval(0b1010, 0b0110), 0b1100);
        assert_eq!(AluImmOp::Ori.eval(0b1010, 0b0110), 0b1110);
    }

    #[test]
    fn alu_mul_div_semantics() {
        assert_eq!(AluOp::Mul.eval(6, 7), 42);
        assert_eq!(AluOp::Mulhu.eval(u32::MAX, u32::MAX), 0xffff_fffe);
        assert_eq!(AluOp::Mulh.eval(-2i32 as u32, 3), 0xffff_ffff);
        // Division corner cases mandated by the RISC-V spec.
        assert_eq!(AluOp::Div.eval(7, 0), u32::MAX);
        assert_eq!(AluOp::Rem.eval(7, 0), 7);
        assert_eq!(AluOp::Div.eval(i32::MIN as u32, -1i32 as u32), i32::MIN as u32);
        assert_eq!(AluOp::Rem.eval(i32::MIN as u32, -1i32 as u32), 0);
        assert_eq!(AluOp::Divu.eval(7, 2), 3);
        assert_eq!(AluOp::Remu.eval(7, 2), 1);
    }

    #[test]
    fn muldiv_classification() {
        assert!(AluOp::Mul.is_muldiv());
        assert!(AluOp::Remu.is_muldiv());
        assert!(!AluOp::Add.is_muldiv());
        assert!(AluOp::Div.is_div());
        assert!(!AluOp::Mul.is_div());
    }

    #[test]
    fn fma_semantics() {
        assert_eq!(FmaOp::Madd.eval_f64(2.0, 3.0, 1.0), 7.0);
        assert_eq!(FmaOp::Msub.eval_f64(2.0, 3.0, 1.0), 5.0);
        assert_eq!(FmaOp::Nmsub.eval_f64(2.0, 3.0, 1.0), -5.0);
        assert_eq!(FmaOp::Nmadd.eval_f64(2.0, 3.0, 1.0), -7.0);
    }

    #[test]
    fn fma_is_fused() {
        // A fused madd must not round the intermediate product: pick values
        // where (a*b) rounds away the low bits that the addend cancels.
        let a = 1.0 + f64::EPSILON;
        let fused = FmaOp::Madd.eval_f64(a, a, -(a * a));
        let unfused = a * a - a * a;
        assert_ne!(fused, f64::mul_add(0.0, 0.0, f64::NAN).is_nan() as i32 as f64 - 1.0);
        assert_eq!(unfused, 0.0);
        assert!(fused != 0.0, "mul_add must keep the unrounded product");
    }

    #[test]
    fn cmp_semantics() {
        assert!(FpCmpOp::Eq.eval_f64(1.0, 1.0));
        assert!(FpCmpOp::Lt.eval_f64(1.0, 2.0));
        assert!(FpCmpOp::Le.eval_f64(2.0, 2.0));
        assert!(!FpCmpOp::Lt.eval_f64(f64::NAN, 1.0));
        assert!(!FpCmpOp::Eq.eval_f64(f64::NAN, f64::NAN));
    }

    #[test]
    fn fmt_fields() {
        assert_eq!(FpFmt::from_field(0), Some(FpFmt::S));
        assert_eq!(FpFmt::from_field(1), Some(FpFmt::D));
        assert_eq!(FpFmt::from_field(2), None);
        assert_eq!(FpFmt::S.size(), 4);
        assert_eq!(FpFmt::D.size(), 8);
    }

    #[test]
    fn csr_ops() {
        for op in [CsrOp::Rw, CsrOp::Rs, CsrOp::Rc, CsrOp::Rwi, CsrOp::Rsi, CsrOp::Rci] {
            assert_eq!(CsrOp::from_funct3(op.funct3()), Some(op));
        }
        assert!(CsrOp::Rwi.is_imm());
        assert!(!CsrOp::Rs.is_imm());
    }

    #[test]
    fn fcvt_w_d_nan_inf_zero_and_boundaries() {
        // NaN converts to the MAXIMUM value (not 0) — RISC-V FCVT table.
        assert_eq!(f64_to_i32(f64::NAN), i32::MAX);
        assert_eq!(f64_to_i32(-f64::NAN), i32::MAX, "sign of NaN is irrelevant");
        assert_eq!(f64_to_i32(f64::INFINITY), i32::MAX);
        assert_eq!(f64_to_i32(f64::NEG_INFINITY), i32::MIN);
        assert_eq!(f64_to_i32(0.0), 0);
        assert_eq!(f64_to_i32(-0.0), 0);
        // Truncation toward zero.
        assert_eq!(f64_to_i32(-3.7), -3);
        assert_eq!(f64_to_i32(3.7), 3);
        // Just out of range saturates; fractional overshoot truncates back
        // into range (2^31 - 0.5 truncates to 2^31 - 1: representable).
        assert_eq!(f64_to_i32(2_147_483_648.0), i32::MAX);
        assert_eq!(f64_to_i32(2_147_483_647.5), i32::MAX, "truncates to i32::MAX exactly");
        assert_eq!(f64_to_i32(2_147_483_646.99), 2_147_483_646);
        assert_eq!(f64_to_i32(-2_147_483_648.0), i32::MIN);
        assert_eq!(f64_to_i32(-2_147_483_648.7), i32::MIN, "truncates to i32::MIN exactly");
        assert_eq!(f64_to_i32(-2_147_483_649.0), i32::MIN);
    }

    #[test]
    fn fcvt_wu_d_nan_inf_zero_and_boundaries() {
        assert_eq!(f64_to_u32(f64::NAN), u32::MAX, "NaN converts to the maximum value");
        assert_eq!(f64_to_u32(f64::INFINITY), u32::MAX);
        assert_eq!(f64_to_u32(f64::NEG_INFINITY), 0);
        assert_eq!(f64_to_u32(0.0), 0);
        assert_eq!(f64_to_u32(-0.0), 0);
        assert_eq!(f64_to_u32(4.9), 4, "truncation toward zero");
        assert_eq!(f64_to_u32(-0.9), 0, "(-1, 0) truncates into range");
        assert_eq!(f64_to_u32(-1.0), 0, "≤ -1 saturates to 0");
        assert_eq!(f64_to_u32(4_294_967_295.0), u32::MAX);
        assert_eq!(f64_to_u32(4_294_967_295.5), u32::MAX, "truncates to u32::MAX exactly");
        assert_eq!(f64_to_u32(4_294_967_296.0), u32::MAX, "just out of range saturates");
        assert_eq!(f64_to_u32(1e300), u32::MAX);
    }

    #[test]
    fn load_store_sizes() {
        assert_eq!(LoadOp::Lw.size(), 4);
        assert_eq!(LoadOp::Lbu.size(), 1);
        assert_eq!(StoreOp::Sh.size(), 2);
    }
}
