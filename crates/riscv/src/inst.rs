//! The structured instruction type.

use crate::ops::{
    AluImmOp, AluOp, BranchOp, CsrOp, DmaOp, FmaOp, FpAluOp, FpCmpOp, FpFmt, IntCvt, LoadOp,
    SgnjOp, StoreOp,
};
use crate::reg::{FpReg, IntReg};

/// A decoded instruction.
///
/// Variants are grouped by encoding format and execution resource rather than
/// one variant per mnemonic; the sub-operation enums in [`crate::ops`] carry
/// the mnemonic-level distinction. The set covers RV32I, M, the F/D subset
/// exercised by the COPIFT workloads, Zicsr, and the Snitch / COPIFT custom
/// extensions (see the crate docs for the inventory).
///
/// # Example
///
/// ```
/// use snitch_riscv::inst::Inst;
/// use snitch_riscv::reg::IntReg;
/// use snitch_riscv::ops::AluImmOp;
///
/// let addi = Inst::OpImm {
///     op: AluImmOp::Addi,
///     rd: IntReg::A0,
///     rs1: IntReg::A0,
///     imm: -1,
/// };
/// assert_eq!(addi.to_string(), "addi a0, a0, -1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    // ----- RV32I -----
    /// `lui rd, imm20` — `imm` carries the already-shifted 32-bit value
    /// (low 12 bits zero).
    Lui { rd: IntReg, imm: i32 },
    /// `auipc rd, imm20` — same immediate convention as [`Inst::Lui`].
    Auipc { rd: IntReg, imm: i32 },
    /// `jal rd, offset`
    Jal { rd: IntReg, offset: i32 },
    /// `jalr rd, offset(rs1)`
    Jalr { rd: IntReg, rs1: IntReg, offset: i32 },
    /// Conditional branches `beq`/`bne`/`blt`/`bge`/`bltu`/`bgeu`.
    Branch { op: BranchOp, rs1: IntReg, rs2: IntReg, offset: i32 },
    /// Integer loads `lb`/`lh`/`lw`/`lbu`/`lhu`.
    Load { op: LoadOp, rd: IntReg, rs1: IntReg, offset: i32 },
    /// Integer stores `sb`/`sh`/`sw`.
    Store { op: StoreOp, rs2: IntReg, rs1: IntReg, offset: i32 },
    /// Register-immediate ALU operations.
    OpImm { op: AluImmOp, rd: IntReg, rs1: IntReg, imm: i32 },
    /// Register-register ALU operations (including M).
    OpReg { op: AluOp, rd: IntReg, rs1: IntReg, rs2: IntReg },
    /// `fence` (modelled as a full memory barrier).
    Fence,
    /// `ecall` — terminates simulation in this environment.
    Ecall,
    /// `ebreak`
    Ebreak,
    /// Zicsr accesses. `src` is `rs1` for register forms and the zero-extended
    /// immediate for `*i` forms (stored in the `rs1` encoding field).
    Csr { op: CsrOp, rd: IntReg, csr: u16, src: u8 },

    // ----- F/D loads and stores -----
    /// `flw rd, offset(rs1)`
    Flw { rd: FpReg, rs1: IntReg, offset: i32 },
    /// `fsw rs2, offset(rs1)`
    Fsw { rs2: FpReg, rs1: IntReg, offset: i32 },
    /// `fld rd, offset(rs1)`
    Fld { rd: FpReg, rs1: IntReg, offset: i32 },
    /// `fsd rs2, offset(rs1)`
    Fsd { rs2: FpReg, rs1: IntReg, offset: i32 },

    // ----- F/D arithmetic -----
    /// `fadd`/`fsub`/`fmul`/`fdiv`/`fsqrt`/`fmin`/`fmax` (`fsqrt` ignores `rs2`).
    FpOp { op: FpAluOp, fmt: FpFmt, rd: FpReg, rs1: FpReg, rs2: FpReg },
    /// Fused multiply-add family.
    FpFma { op: FmaOp, fmt: FpFmt, rd: FpReg, rs1: FpReg, rs2: FpReg, rs3: FpReg },
    /// Sign injection (`fsgnj*`; also `fmv.s/d`, `fneg`, `fabs` idioms).
    FpSgnj { op: SgnjOp, fmt: FpFmt, rd: FpReg, rs1: FpReg, rs2: FpReg },
    /// Comparisons writing the *integer* register file (`feq`/`flt`/`fle`).
    /// A Type 3 cross-thread dependency source in COPIFT terms.
    FpCmp { op: FpCmpOp, fmt: FpFmt, rd: IntReg, rs1: FpReg, rs2: FpReg },
    /// `fcvt.w[u].{s,d}`: float → integer RF (Type 3 dependency source).
    FpCvtF2I { to: IntCvt, fmt: FpFmt, rd: IntReg, rs1: FpReg },
    /// `fcvt.{s,d}.w[u]`: integer RF → float (Type 3 dependency source).
    FpCvtI2F { from: IntCvt, fmt: FpFmt, rd: FpReg, rs1: IntReg },
    /// `fcvt.s.d` / `fcvt.d.s`: between FP formats (stays in the FP RF).
    FpCvtF2F { to: FpFmt, rd: FpReg, rs1: FpReg },
    /// `fmv.x.w`: FP bits → integer RF (Type 3 dependency source).
    FpMvF2X { rd: IntReg, rs1: FpReg },
    /// `fmv.w.x`: integer bits → FP RF (Type 3 dependency source).
    FpMvX2F { rd: FpReg, rs1: IntReg },
    /// `fclass.{s,d}` writing the integer RF.
    FpClass { fmt: FpFmt, rd: IntReg, rs1: FpReg },

    // ----- Snitch FREP (custom-0) -----
    /// `frep.o rs1, max_inst, stagger_max, stagger_mask`: repeat the next
    /// `max_inst` FP instructions as a sequence, `rs1`+1 times in total.
    FrepO { rep: IntReg, max_inst: u8, stagger_max: u8, stagger_mask: u8 },
    /// `frep.i`: like `frep.o` but repeats each instruction back-to-back.
    FrepI { rep: IntReg, max_inst: u8, stagger_max: u8, stagger_mask: u8 },

    // ----- Snitch SSR configuration (custom-2) -----
    /// `scfgwi rs1, addr`: write `rs1` to the SSR configuration word `addr`
    /// (see [`crate::csr::SsrCfgWord::addr`] for the address layout).
    Scfgwi { value: IntReg, addr: u16 },
    /// `scfgri rd, addr`: read an SSR configuration word.
    Scfgri { rd: IntReg, addr: u16 },

    // ----- Snitch xdma (custom-2) -----
    /// DMA programming. Field use per [`DmaOp`]: `rd` for `dmcpyi`/`dmstati`
    /// results, `rs1`/`rs2` for operands, `imm5` for the config immediate.
    Dma { op: DmaOp, rd: IntReg, rs1: IntReg, rs2: IntReg, imm5: u8 },

    // ----- COPIFT extensions (custom-1), paper §II-B -----
    /// `copift.feq.d` / `copift.flt.d` / `copift.fle.d`: like the standard
    /// comparison but the 0/1 result is written to the *FP* register file
    /// (low 32 bits, high bits zero), so the instruction is legal under FREP.
    CopiftCmp { op: FpCmpOp, rd: FpReg, rs1: FpReg, rs2: FpReg },
    /// `copift.fcvt.w[u].d`: convert double → int32, result into FP rd's low
    /// 32 bits.
    CopiftCvtF2I { to: IntCvt, rd: FpReg, rs1: FpReg },
    /// `copift.fcvt.d.w[u]`: interpret FP rs1's low 32 bits as int32/uint32
    /// and convert to double.
    CopiftCvtI2F { from: IntCvt, rd: FpReg, rs1: FpReg },
    /// `copift.fclass.d`: classification mask into FP rd's low bits.
    CopiftClass { rd: FpReg, rs1: FpReg },
}

impl Inst {
    /// Canonical `nop` (`addi x0, x0, 0`).
    pub const NOP: Inst =
        Inst::OpImm { op: AluImmOp::Addi, rd: IntReg::ZERO, rs1: IntReg::ZERO, imm: 0 };

    /// Whether this instruction is executed by the FP subsystem (offloaded by
    /// the integer core). This includes FP loads/stores and the COPIFT
    /// extensions, but *not* FREP/SSR/DMA configuration, which execute on the
    /// integer side.
    #[must_use]
    pub fn is_fp(&self) -> bool {
        matches!(
            self,
            Inst::Flw { .. }
                | Inst::Fsw { .. }
                | Inst::Fld { .. }
                | Inst::Fsd { .. }
                | Inst::FpOp { .. }
                | Inst::FpFma { .. }
                | Inst::FpSgnj { .. }
                | Inst::FpCmp { .. }
                | Inst::FpCvtF2I { .. }
                | Inst::FpCvtI2F { .. }
                | Inst::FpCvtF2F { .. }
                | Inst::FpMvF2X { .. }
                | Inst::FpMvX2F { .. }
                | Inst::FpClass { .. }
                | Inst::CopiftCmp { .. }
                | Inst::CopiftCvtF2I { .. }
                | Inst::CopiftCvtI2F { .. }
                | Inst::CopiftClass { .. }
        )
    }

    /// Whether this is one of the COPIFT custom-1 extension instructions.
    #[must_use]
    pub fn is_copift_ext(&self) -> bool {
        matches!(
            self,
            Inst::CopiftCmp { .. }
                | Inst::CopiftCvtF2I { .. }
                | Inst::CopiftCvtI2F { .. }
                | Inst::CopiftClass { .. }
        )
    }

    /// Whether this instruction changes control flow.
    #[must_use]
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Branch { .. } | Inst::Ecall | Inst::Ebreak
        )
    }

    /// Whether this is an FREP configuration instruction.
    #[must_use]
    pub fn is_frep(&self) -> bool {
        matches!(self, Inst::FrepO { .. } | Inst::FrepI { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_is_addi_zero() {
        match Inst::NOP {
            Inst::OpImm { op, rd, rs1, imm } => {
                assert_eq!(op, AluImmOp::Addi);
                assert!(rd.is_zero());
                assert!(rs1.is_zero());
                assert_eq!(imm, 0);
            }
            other => panic!("unexpected nop shape: {other:?}"),
        }
    }

    #[test]
    fn fp_classification() {
        let fadd = Inst::FpOp {
            op: FpAluOp::Add,
            fmt: FpFmt::D,
            rd: FpReg::FA0,
            rs1: FpReg::FA1,
            rs2: FpReg::FA2,
        };
        assert!(fadd.is_fp());
        assert!(!fadd.is_copift_ext());
        assert!(!Inst::NOP.is_fp());

        let frep = Inst::FrepO { rep: IntReg::T0, max_inst: 4, stagger_max: 0, stagger_mask: 0 };
        assert!(!frep.is_fp(), "frep executes (issues) on the integer side");
        assert!(frep.is_frep());

        let ccmp =
            Inst::CopiftCmp { op: FpCmpOp::Lt, rd: FpReg::FA0, rs1: FpReg::FA1, rs2: FpReg::FA2 };
        assert!(ccmp.is_fp());
        assert!(ccmp.is_copift_ext());
    }

    #[test]
    fn control_flow_classification() {
        assert!(Inst::Ecall.is_control_flow());
        assert!(Inst::Jal { rd: IntReg::ZERO, offset: 8 }.is_control_flow());
        assert!(!Inst::NOP.is_control_flow());
    }
}
