//! RISC-V instruction-set model for the COPIFT reproduction.
//!
//! This crate models the instruction set executed by the Snitch core as
//! evaluated in the COPIFT paper (Colagrande & Benini, DAC 2025):
//!
//! * the RV32I base integer ISA and the "M" standard extension,
//! * the "F" and "D" floating-point extensions (the subset exercised by the
//!   paper's workloads: loads/stores, arithmetic, fused multiply-add,
//!   comparisons, conversions, sign injection, moves and classification),
//! * Zicsr (CSR accesses, used among other things to enable SSRs),
//! * the Snitch extensions: **FREP** hardware loops, **SSR** stream
//!   configuration and the **xdma** cluster DMA instructions,
//! * the **COPIFT ISA extensions** of the paper's §II-B: copies of the
//!   cross-register-file "D" instructions re-encoded in the `custom-1` opcode
//!   space so that they operate entirely on the floating-point register file
//!   and therefore remain legal inside FREP loops.
//!
//! The crate provides typed [registers](reg), a structured [instruction
//! enum](inst::Inst), binary [encoding](encode) and [decoding](decode),
//! [disassembly](disasm) and the [def/use and classification
//! metadata](meta) that both the cycle-accurate simulator (`snitch-sim`) and
//! the COPIFT transformation library (`copift`) build on.
//!
//! # Example
//!
//! ```
//! use snitch_riscv::inst::Inst;
//! use snitch_riscv::reg::{IntReg, FpReg};
//! use snitch_riscv::ops::{FpFmt, FpAluOp};
//!
//! let inst = Inst::FpOp {
//!     op: FpAluOp::Add,
//!     fmt: FpFmt::D,
//!     rd: FpReg::FA0,
//!     rs1: FpReg::FA1,
//!     rs2: FpReg::FA2,
//! };
//! let word = inst.encode();
//! assert_eq!(Inst::decode(word)?, inst);
//! assert_eq!(inst.to_string(), "fadd.d fa0, fa1, fa2");
//! # Ok::<(), snitch_riscv::DecodeError>(())
//! ```

#![forbid(unsafe_code)]

pub mod csr;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod inst;
pub mod meta;
pub mod ops;
pub mod reg;

pub use decode::DecodeError;
pub use encode::EncodeError;
pub use inst::Inst;
pub use meta::{InstClass, MemClass, RegRef};
pub use reg::{FpReg, IntReg};
