//! Textual disassembly (the `Display` impl for [`Inst`]).

use std::fmt;

use crate::inst::Inst;
use crate::ops::{
    AluImmOp, AluOp, BranchOp, CsrOp, DmaOp, FmaOp, FpAluOp, LoadOp, SgnjOp, StoreOp,
};

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", (imm as u32) >> 12),
            Inst::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", (imm as u32) >> 12),
            Inst::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Inst::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Inst::Branch { op, rs1, rs2, offset } => {
                let m = match op {
                    BranchOp::Eq => "beq",
                    BranchOp::Ne => "bne",
                    BranchOp::Lt => "blt",
                    BranchOp::Ge => "bge",
                    BranchOp::Ltu => "bltu",
                    BranchOp::Geu => "bgeu",
                };
                write!(f, "{m} {rs1}, {rs2}, {offset}")
            }
            Inst::Load { op, rd, rs1, offset } => {
                let m = match op {
                    LoadOp::Lb => "lb",
                    LoadOp::Lh => "lh",
                    LoadOp::Lw => "lw",
                    LoadOp::Lbu => "lbu",
                    LoadOp::Lhu => "lhu",
                };
                write!(f, "{m} {rd}, {offset}({rs1})")
            }
            Inst::Store { op, rs2, rs1, offset } => {
                let m = match op {
                    StoreOp::Sb => "sb",
                    StoreOp::Sh => "sh",
                    StoreOp::Sw => "sw",
                };
                write!(f, "{m} {rs2}, {offset}({rs1})")
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let m = match op {
                    AluImmOp::Addi => "addi",
                    AluImmOp::Slti => "slti",
                    AluImmOp::Sltiu => "sltiu",
                    AluImmOp::Xori => "xori",
                    AluImmOp::Ori => "ori",
                    AluImmOp::Andi => "andi",
                    AluImmOp::Slli => "slli",
                    AluImmOp::Srli => "srli",
                    AluImmOp::Srai => "srai",
                };
                write!(f, "{m} {rd}, {rs1}, {imm}")
            }
            Inst::OpReg { op, rd, rs1, rs2 } => {
                let m = match op {
                    AluOp::Add => "add",
                    AluOp::Sub => "sub",
                    AluOp::Sll => "sll",
                    AluOp::Slt => "slt",
                    AluOp::Sltu => "sltu",
                    AluOp::Xor => "xor",
                    AluOp::Srl => "srl",
                    AluOp::Sra => "sra",
                    AluOp::Or => "or",
                    AluOp::And => "and",
                    AluOp::Mul => "mul",
                    AluOp::Mulh => "mulh",
                    AluOp::Mulhsu => "mulhsu",
                    AluOp::Mulhu => "mulhu",
                    AluOp::Div => "div",
                    AluOp::Divu => "divu",
                    AluOp::Rem => "rem",
                    AluOp::Remu => "remu",
                };
                write!(f, "{m} {rd}, {rs1}, {rs2}")
            }
            Inst::Fence => f.write_str("fence"),
            Inst::Ecall => f.write_str("ecall"),
            Inst::Ebreak => f.write_str("ebreak"),
            Inst::Csr { op, rd, csr, src } => {
                let m = match op {
                    CsrOp::Rw => "csrrw",
                    CsrOp::Rs => "csrrs",
                    CsrOp::Rc => "csrrc",
                    CsrOp::Rwi => "csrrwi",
                    CsrOp::Rsi => "csrrsi",
                    CsrOp::Rci => "csrrci",
                };
                if op.is_imm() {
                    write!(f, "{m} {rd}, {csr:#x}, {src}")
                } else {
                    write!(f, "{m} {rd}, {csr:#x}, {}", crate::reg::IntReg::new(src))
                }
            }
            Inst::Flw { rd, rs1, offset } => write!(f, "flw {rd}, {offset}({rs1})"),
            Inst::Fsw { rs2, rs1, offset } => write!(f, "fsw {rs2}, {offset}({rs1})"),
            Inst::Fld { rd, rs1, offset } => write!(f, "fld {rd}, {offset}({rs1})"),
            Inst::Fsd { rs2, rs1, offset } => write!(f, "fsd {rs2}, {offset}({rs1})"),
            Inst::FpOp { op, fmt, rd, rs1, rs2 } => {
                let m = match op {
                    FpAluOp::Add => "fadd",
                    FpAluOp::Sub => "fsub",
                    FpAluOp::Mul => "fmul",
                    FpAluOp::Div => "fdiv",
                    FpAluOp::Sqrt => "fsqrt",
                    FpAluOp::Min => "fmin",
                    FpAluOp::Max => "fmax",
                };
                if op == FpAluOp::Sqrt {
                    write!(f, "{m}.{} {rd}, {rs1}", fmt.suffix())
                } else {
                    write!(f, "{m}.{} {rd}, {rs1}, {rs2}", fmt.suffix())
                }
            }
            Inst::FpFma { op, fmt, rd, rs1, rs2, rs3 } => {
                let m = match op {
                    FmaOp::Madd => "fmadd",
                    FmaOp::Msub => "fmsub",
                    FmaOp::Nmsub => "fnmsub",
                    FmaOp::Nmadd => "fnmadd",
                };
                write!(f, "{m}.{} {rd}, {rs1}, {rs2}, {rs3}", fmt.suffix())
            }
            Inst::FpSgnj { op, fmt, rd, rs1, rs2 } => {
                let m = match op {
                    SgnjOp::Sgnj => "fsgnj",
                    SgnjOp::Sgnjn => "fsgnjn",
                    SgnjOp::Sgnjx => "fsgnjx",
                };
                write!(f, "{m}.{} {rd}, {rs1}, {rs2}", fmt.suffix())
            }
            Inst::FpCmp { op, fmt, rd, rs1, rs2 } => {
                write!(f, "{}.{} {rd}, {rs1}, {rs2}", op.mnemonic(), fmt.suffix())
            }
            Inst::FpCvtF2I { to, fmt, rd, rs1 } => {
                write!(f, "fcvt.{}.{} {rd}, {rs1}", to.suffix(), fmt.suffix())
            }
            Inst::FpCvtI2F { from, fmt, rd, rs1 } => {
                write!(f, "fcvt.{}.{} {rd}, {rs1}", fmt.suffix(), from.suffix())
            }
            Inst::FpCvtF2F { to, rd, rs1 } => match to {
                crate::ops::FpFmt::S => write!(f, "fcvt.s.d {rd}, {rs1}"),
                crate::ops::FpFmt::D => write!(f, "fcvt.d.s {rd}, {rs1}"),
            },
            Inst::FpMvF2X { rd, rs1 } => write!(f, "fmv.x.w {rd}, {rs1}"),
            Inst::FpMvX2F { rd, rs1 } => write!(f, "fmv.w.x {rd}, {rs1}"),
            Inst::FpClass { fmt, rd, rs1 } => write!(f, "fclass.{} {rd}, {rs1}", fmt.suffix()),
            Inst::FrepO { rep, max_inst, stagger_max, stagger_mask } => {
                write!(f, "frep.o {rep}, {max_inst}, {stagger_max}, {stagger_mask:#x}")
            }
            Inst::FrepI { rep, max_inst, stagger_max, stagger_mask } => {
                write!(f, "frep.i {rep}, {max_inst}, {stagger_max}, {stagger_mask:#x}")
            }
            Inst::Scfgwi { value, addr } => write!(f, "scfgwi {value}, {addr:#x}"),
            Inst::Scfgri { rd, addr } => write!(f, "scfgri {rd}, {addr:#x}"),
            Inst::Dma { op, rd, rs1, rs2, imm5 } => match op {
                DmaOp::Src | DmaOp::Dst | DmaOp::Str => write!(f, "{op} {rs1}, {rs2}"),
                DmaOp::Rep => write!(f, "{op} {rs1}"),
                DmaOp::CpyI => write!(f, "{op} {rd}, {rs1}, {imm5}"),
                DmaOp::StatI => write!(f, "{op} {rd}, {imm5}"),
            },
            Inst::CopiftCmp { op, rd, rs1, rs2 } => {
                write!(f, "copift.{}.d {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Inst::CopiftCvtF2I { to, rd, rs1 } => {
                write!(f, "copift.fcvt.{}.d {rd}, {rs1}", to.suffix())
            }
            Inst::CopiftCvtI2F { from, rd, rs1 } => {
                write!(f, "copift.fcvt.d.{} {rd}, {rs1}", from.suffix())
            }
            Inst::CopiftClass { rd, rs1 } => write!(f, "copift.fclass.d {rd}, {rs1}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::inst::Inst;
    use crate::ops::*;
    use crate::reg::{FpReg, IntReg};

    #[test]
    fn renders_core_instructions() {
        assert_eq!(Inst::NOP.to_string(), "addi zero, zero, 0");
        let lw = Inst::Load { op: LoadOp::Lw, rd: IntReg::A0, rs1: IntReg::SP, offset: -8 };
        assert_eq!(lw.to_string(), "lw a0, -8(sp)");
        let fma = Inst::FpFma {
            op: FmaOp::Madd,
            fmt: FpFmt::D,
            rd: FpReg::FA4,
            rs1: FpReg::FA2,
            rs2: FpReg::FA1,
            rs3: FpReg::FA3,
        };
        assert_eq!(fma.to_string(), "fmadd.d fa4, fa2, fa1, fa3");
    }

    #[test]
    fn renders_extensions() {
        let frep = Inst::FrepO { rep: IntReg::T0, max_inst: 9, stagger_max: 0, stagger_mask: 0 };
        assert_eq!(frep.to_string(), "frep.o t0, 9, 0, 0x0");
        let cvt = Inst::CopiftCvtI2F { from: IntCvt::Wu, rd: FpReg::FA0, rs1: FpReg::FT0 };
        assert_eq!(cvt.to_string(), "copift.fcvt.d.wu fa0, ft0");
        let cmp =
            Inst::CopiftCmp { op: FpCmpOp::Lt, rd: FpReg::FA0, rs1: FpReg::FA1, rs2: FpReg::FA2 };
        assert_eq!(cmp.to_string(), "copift.flt.d fa0, fa1, fa2");
    }
}
