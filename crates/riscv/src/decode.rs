//! Binary instruction decoding.

use std::error::Error;
use std::fmt;

use crate::encode::*;
use crate::inst::Inst;
use crate::ops::*;
use crate::reg::{FpReg, IntReg};

/// Error returned when a 32-bit word does not decode to a supported
/// instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    word: u32,
}

impl DecodeError {
    /// The word that failed to decode.
    #[must_use]
    pub fn word(&self) -> u32 {
        self.word
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported instruction word {:#010x}", self.word)
    }
}

impl Error for DecodeError {}

fn rd(word: u32) -> IntReg {
    IntReg::new(((word >> 7) & 0x1f) as u8)
}
fn rs1(word: u32) -> IntReg {
    IntReg::new(((word >> 15) & 0x1f) as u8)
}
fn rs2(word: u32) -> IntReg {
    IntReg::new(((word >> 20) & 0x1f) as u8)
}
fn frd(word: u32) -> FpReg {
    FpReg::new(((word >> 7) & 0x1f) as u8)
}
fn frs1(word: u32) -> FpReg {
    FpReg::new(((word >> 15) & 0x1f) as u8)
}
fn frs2(word: u32) -> FpReg {
    FpReg::new(((word >> 20) & 0x1f) as u8)
}
fn frs3(word: u32) -> FpReg {
    FpReg::new(((word >> 27) & 0x1f) as u8)
}
fn funct3(word: u32) -> u32 {
    (word >> 12) & 0x7
}
fn funct7(word: u32) -> u32 {
    word >> 25
}
fn imm_i(word: u32) -> i32 {
    (word as i32) >> 20
}
fn imm_s(word: u32) -> i32 {
    (((word as i32) >> 25) << 5) | (((word >> 7) & 0x1f) as i32)
}
fn imm_b(word: u32) -> i32 {
    let sign = (word as i32) >> 31; // bit 12
    (sign << 12)
        | ((((word >> 7) & 1) as i32) << 11)
        | ((((word >> 25) & 0x3f) as i32) << 5)
        | ((((word >> 8) & 0xf) as i32) << 1)
}
fn imm_j(word: u32) -> i32 {
    let sign = (word as i32) >> 31; // bit 20
    (sign << 20)
        | ((((word >> 12) & 0xff) as i32) << 12)
        | ((((word >> 20) & 1) as i32) << 11)
        | ((((word >> 21) & 0x3ff) as i32) << 1)
}

impl Inst {
    /// Decodes a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the word is not a supported instruction.
    pub fn decode(word: u32) -> Result<Inst, DecodeError> {
        let err = Err(DecodeError { word });
        let inst = match word & 0x7f {
            OPC_LUI => Inst::Lui { rd: rd(word), imm: (word & 0xffff_f000) as i32 },
            OPC_AUIPC => Inst::Auipc { rd: rd(word), imm: (word & 0xffff_f000) as i32 },
            OPC_JAL => Inst::Jal { rd: rd(word), offset: imm_j(word) },
            OPC_JALR if funct3(word) == 0 => {
                Inst::Jalr { rd: rd(word), rs1: rs1(word), offset: imm_i(word) }
            }
            OPC_BRANCH => match BranchOp::from_funct3(funct3(word)) {
                Some(op) => {
                    Inst::Branch { op, rs1: rs1(word), rs2: rs2(word), offset: imm_b(word) }
                }
                None => return err,
            },
            OPC_LOAD => match LoadOp::from_funct3(funct3(word)) {
                Some(op) => Inst::Load { op, rd: rd(word), rs1: rs1(word), offset: imm_i(word) },
                None => return err,
            },
            OPC_STORE => match StoreOp::from_funct3(funct3(word)) {
                Some(op) => Inst::Store { op, rs2: rs2(word), rs1: rs1(word), offset: imm_s(word) },
                None => return err,
            },
            OPC_OP_IMM => {
                let imm = imm_i(word);
                let op = match funct3(word) {
                    0b000 => AluImmOp::Addi,
                    0b010 => AluImmOp::Slti,
                    0b011 => AluImmOp::Sltiu,
                    0b100 => AluImmOp::Xori,
                    0b110 => AluImmOp::Ori,
                    0b111 => AluImmOp::Andi,
                    0b001 if funct7(word) == 0 => AluImmOp::Slli,
                    0b101 if funct7(word) == 0 => AluImmOp::Srli,
                    0b101 if funct7(word) == 0x20 => AluImmOp::Srai,
                    _ => return err,
                };
                let imm = match op {
                    AluImmOp::Slli | AluImmOp::Srli | AluImmOp::Srai => imm & 0x1f,
                    _ => imm,
                };
                Inst::OpImm { op, rd: rd(word), rs1: rs1(word), imm }
            }
            OPC_OP => {
                let op = match (funct7(word), funct3(word)) {
                    (0x00, 0b000) => AluOp::Add,
                    (0x20, 0b000) => AluOp::Sub,
                    (0x00, 0b001) => AluOp::Sll,
                    (0x00, 0b010) => AluOp::Slt,
                    (0x00, 0b011) => AluOp::Sltu,
                    (0x00, 0b100) => AluOp::Xor,
                    (0x00, 0b101) => AluOp::Srl,
                    (0x20, 0b101) => AluOp::Sra,
                    (0x00, 0b110) => AluOp::Or,
                    (0x00, 0b111) => AluOp::And,
                    (0x01, 0b000) => AluOp::Mul,
                    (0x01, 0b001) => AluOp::Mulh,
                    (0x01, 0b010) => AluOp::Mulhsu,
                    (0x01, 0b011) => AluOp::Mulhu,
                    (0x01, 0b100) => AluOp::Div,
                    (0x01, 0b101) => AluOp::Divu,
                    (0x01, 0b110) => AluOp::Rem,
                    (0x01, 0b111) => AluOp::Remu,
                    _ => return err,
                };
                Inst::OpReg { op, rd: rd(word), rs1: rs1(word), rs2: rs2(word) }
            }
            OPC_MISC_MEM if funct3(word) == 0 => Inst::Fence,
            OPC_SYSTEM => match funct3(word) {
                0 if word == 0x0000_0073 => Inst::Ecall,
                0 if word == 0x0010_0073 => Inst::Ebreak,
                f3 => match CsrOp::from_funct3(f3) {
                    Some(op) => Inst::Csr {
                        op,
                        rd: rd(word),
                        csr: (word >> 20) as u16,
                        src: ((word >> 15) & 0x1f) as u8,
                    },
                    None => return err,
                },
            },
            OPC_LOAD_FP => match funct3(word) {
                0b010 => Inst::Flw { rd: frd(word), rs1: rs1(word), offset: imm_i(word) },
                0b011 => Inst::Fld { rd: frd(word), rs1: rs1(word), offset: imm_i(word) },
                _ => return err,
            },
            OPC_STORE_FP => match funct3(word) {
                0b010 => Inst::Fsw { rs2: frs2(word), rs1: rs1(word), offset: imm_s(word) },
                0b011 => Inst::Fsd { rs2: frs2(word), rs1: rs1(word), offset: imm_s(word) },
                _ => return err,
            },
            OPC_MADD | 0x47 | 0x4B | 0x4F => {
                let op = match word & 0x7f {
                    OPC_MADD => FmaOp::Madd,
                    0x47 => FmaOp::Msub,
                    0x4B => FmaOp::Nmsub,
                    0x4F => FmaOp::Nmadd,
                    _ => unreachable!(),
                };
                let Some(fmt) = FpFmt::from_field((word >> 25) & 0x3) else {
                    return err;
                };
                Inst::FpFma {
                    op,
                    fmt,
                    rd: frd(word),
                    rs1: frs1(word),
                    rs2: frs2(word),
                    rs3: frs3(word),
                }
            }
            OPC_OP_FP => return decode_op_fp(word).ok_or(DecodeError { word }),
            OPC_CUSTOM0 => {
                // imm[7:0] holds `max_inst - 1`; the all-ones field would
                // mean a 256-instruction body, which `Inst` (and the
                // assembler) cap at 255 — reject rather than overflow.
                let Some(max_inst) = (((word >> 20) & 0xff) as u8).checked_add(1) else {
                    return err;
                };
                let stagger_mask = ((word >> 28) & 0xf) as u8;
                let stagger_max = ((word >> 7) & 0x1f) as u8;
                let rep = rs1(word);
                match funct3(word) {
                    0b000 => Inst::FrepO { rep, max_inst, stagger_max, stagger_mask },
                    0b001 => Inst::FrepI { rep, max_inst, stagger_max, stagger_mask },
                    _ => return err,
                }
            }
            OPC_CUSTOM1 => return decode_copift(word).ok_or(DecodeError { word }),
            OPC_CUSTOM2 => match funct3(word) {
                0b010 => Inst::Scfgwi { value: rs1(word), addr: ((word >> 20) & 0xfff) as u16 },
                0b011 => Inst::Scfgri { rd: rd(word), addr: ((word >> 20) & 0xfff) as u16 },
                0b100 => {
                    let (op, uses_imm) = match funct7(word) {
                        0 => (DmaOp::Src, false),
                        1 => (DmaOp::Dst, false),
                        2 => (DmaOp::Str, false),
                        3 => (DmaOp::Rep, false),
                        4 => (DmaOp::CpyI, true),
                        5 => (DmaOp::StatI, true),
                        _ => return err,
                    };
                    let (r2, imm5) = if uses_imm {
                        (IntReg::ZERO, ((word >> 20) & 0x1f) as u8)
                    } else {
                        (rs2(word), 0)
                    };
                    Inst::Dma { op, rd: rd(word), rs1: rs1(word), rs2: r2, imm5 }
                }
                _ => return err,
            },
            _ => return err,
        };
        Ok(inst)
    }
}

fn decode_op_fp(word: u32) -> Option<Inst> {
    let f7 = funct7(word);
    let fmt = FpFmt::from_field(f7 & 1)?;
    let base = f7 & !1;
    Some(match base {
        0x00 => {
            Inst::FpOp { op: FpAluOp::Add, fmt, rd: frd(word), rs1: frs1(word), rs2: frs2(word) }
        }
        0x04 => {
            Inst::FpOp { op: FpAluOp::Sub, fmt, rd: frd(word), rs1: frs1(word), rs2: frs2(word) }
        }
        0x08 => {
            Inst::FpOp { op: FpAluOp::Mul, fmt, rd: frd(word), rs1: frs1(word), rs2: frs2(word) }
        }
        0x0C => {
            Inst::FpOp { op: FpAluOp::Div, fmt, rd: frd(word), rs1: frs1(word), rs2: frs2(word) }
        }
        0x2C => {
            Inst::FpOp { op: FpAluOp::Sqrt, fmt, rd: frd(word), rs1: frs1(word), rs2: FpReg::FT0 }
        }
        0x10 => {
            let op = match funct3(word) {
                0b000 => SgnjOp::Sgnj,
                0b001 => SgnjOp::Sgnjn,
                0b010 => SgnjOp::Sgnjx,
                _ => return None,
            };
            Inst::FpSgnj { op, fmt, rd: frd(word), rs1: frs1(word), rs2: frs2(word) }
        }
        0x14 => {
            let op = match funct3(word) {
                0b000 => FpAluOp::Min,
                0b001 => FpAluOp::Max,
                _ => return None,
            };
            Inst::FpOp { op, fmt, rd: frd(word), rs1: frs1(word), rs2: frs2(word) }
        }
        0x50 => {
            let op = FpCmpOp::from_funct3(funct3(word))?;
            Inst::FpCmp { op, fmt, rd: rd(word), rs1: frs1(word), rs2: frs2(word) }
        }
        0x60 => {
            let to = IntCvt::from_field((word >> 20) & 0x1f)?;
            Inst::FpCvtF2I { to, fmt, rd: rd(word), rs1: frs1(word) }
        }
        0x68 => {
            let from = IntCvt::from_field((word >> 20) & 0x1f)?;
            Inst::FpCvtI2F { from, fmt, rd: frd(word), rs1: rs1(word) }
        }
        0x20 => {
            // fcvt.s.d / fcvt.d.s: funct7 low bit is the *destination* format.
            let to = fmt;
            let from = FpFmt::from_field((word >> 20) & 0x1f)?;
            if to == from {
                return None;
            }
            Inst::FpCvtF2F { to, rd: frd(word), rs1: frs1(word) }
        }
        0x70 => match (fmt, funct3(word)) {
            (FpFmt::S, 0b000) => Inst::FpMvF2X { rd: rd(word), rs1: frs1(word) },
            (_, 0b001) => Inst::FpClass { fmt, rd: rd(word), rs1: frs1(word) },
            _ => return None,
        },
        0x78 => match (fmt, funct3(word)) {
            (FpFmt::S, 0b000) => Inst::FpMvX2F { rd: frd(word), rs1: rs1(word) },
            _ => return None,
        },
        _ => return None,
    })
}

fn decode_copift(word: u32) -> Option<Inst> {
    let f7 = funct7(word);
    if FpFmt::from_field(f7 & 1)? != FpFmt::D {
        return None;
    }
    Some(match f7 & !1 {
        0x50 => {
            let op = FpCmpOp::from_funct3(funct3(word))?;
            Inst::CopiftCmp { op, rd: frd(word), rs1: frs1(word), rs2: frs2(word) }
        }
        0x60 => {
            let to = IntCvt::from_field((word >> 20) & 0x1f)?;
            Inst::CopiftCvtF2I { to, rd: frd(word), rs1: frs1(word) }
        }
        0x68 => {
            let from = IntCvt::from_field((word >> 20) & 0x1f)?;
            Inst::CopiftCvtI2F { from, rd: frd(word), rs1: frs1(word) }
        }
        0x70 if funct3(word) == 0b001 => Inst::CopiftClass { rd: frd(word), rs1: frs1(word) },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_rejects_garbage() {
        assert!(Inst::decode(0xffff_ffff).is_err());
        assert!(Inst::decode(0x0000_0000).is_err());
        let e = Inst::decode(0xffff_ffff).unwrap_err();
        assert_eq!(e.word(), 0xffff_ffff);
        assert!(e.to_string().contains("0xffffffff"));
    }

    #[test]
    fn roundtrip_known_words() {
        // A handful of externally assembled words.
        for word in [
            0x02a5_8513u32, // addi a0, a1, 42
            0x00c5_8533,    // add a0, a1, a2
            0x0081_2283,    // lw t0, 8(sp)
            0x0000_0073,    // ecall
            0x02c5_f553,    // fadd.d fa0, fa1, fa2
            0x0006_b687,    // fld fa3, 0(a3)
        ] {
            let inst = Inst::decode(word).expect("decodes");
            assert_eq!(inst.encode(), word, "word {word:#010x} re-encodes identically");
        }
    }

    #[test]
    fn decode_fcvt_between_formats() {
        let cvt_sd = Inst::FpCvtF2F { to: FpFmt::S, rd: FpReg::FA0, rs1: FpReg::FA1 };
        assert_eq!(Inst::decode(cvt_sd.encode()).unwrap(), cvt_sd);
        let cvt_ds = Inst::FpCvtF2F { to: FpFmt::D, rd: FpReg::FA0, rs1: FpReg::FA1 };
        assert_eq!(Inst::decode(cvt_ds.encode()).unwrap(), cvt_ds);
    }
}
