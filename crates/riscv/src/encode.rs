//! Binary instruction encoding.
//!
//! Standard RV32IMFD instructions use their ratified encodings. The Snitch
//! and COPIFT extensions use clean-room encodings in the `custom-0` (0x0B),
//! `custom-1` (0x2B) and `custom-2` (0x5B) opcode spaces:
//!
//! * **FREP** (custom-0): I-type. `imm[7:0]` = `max_inst - 1`,
//!   `imm[11:8]` = `stagger_mask`, `rd` field = `stagger_max`,
//!   `rs1` = repetition register, `funct3` = 0 (`frep.o`) / 1 (`frep.i`).
//! * **SSR config** (custom-2): I-type, `funct3` = 2 (`scfgwi`) /
//!   3 (`scfgri`), `imm[11:0]` = configuration word address.
//! * **xdma** (custom-2): R-type, `funct3` = 4, `funct7` selects the
//!   operation; `dmcpyi`/`dmstati` carry their 5-bit config immediate in the
//!   `rs2` field.
//! * **COPIFT** (custom-1, paper §II-B): identical field layout to the OP-FP
//!   original of each instruction ("we copy the original encodings"), with
//!   only the major opcode changed, exactly as the paper describes.
//!
//! The precise bit layouts of the RTL are irrelevant to the architectural
//! evaluation; what matters (and is faithful) is which fields exist and which
//! execution resource each instruction occupies.

use crate::inst::Inst;
use crate::ops::{AluImmOp, DmaOp, FpAluOp, FpFmt};

/// Why an [`Inst`] cannot be encoded into its 32-bit binary form.
///
/// Produced by [`Inst::try_encode`]; each variant names the offending field
/// and its legal range so assembler-layer callers can surface a precise
/// diagnostic instead of a panic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EncodeError {
    /// A signed immediate does not fit its field.
    ImmOutOfRange {
        /// Which field overflowed (e.g. `"I-type immediate"`).
        field: &'static str,
        /// The value that does not fit.
        value: i32,
        /// Smallest encodable value.
        min: i32,
        /// Largest encodable value.
        max: i32,
    },
    /// A branch or jump offset is odd — targets are 16-bit parcel aligned.
    MisalignedOffset {
        /// Which field is misaligned.
        field: &'static str,
        /// The odd offset.
        value: i32,
    },
    /// A U-type immediate has one of its low 12 bits set.
    LowBitsSet {
        /// The offending immediate.
        value: i32,
    },
    /// An unsigned field does not fit its width.
    FieldTooWide {
        /// Which field overflowed (e.g. `"CSR address"`).
        field: &'static str,
        /// The value that does not fit.
        value: u32,
        /// Largest encodable value.
        max: u32,
    },
    /// An FREP with `max_inst == 0` — the body must contain at least one
    /// instruction (the hardware field stores `max_inst - 1`).
    EmptyFrepBody,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            EncodeError::ImmOutOfRange { field, value, min, max } => {
                write!(f, "{field} {value} out of range [{min}, {max}]")
            }
            EncodeError::MisalignedOffset { field, value } => {
                write!(f, "{field} {value} is odd (targets are 2-byte aligned)")
            }
            EncodeError::LowBitsSet { value } => {
                write!(f, "U-type immediate {value:#x} must have its low 12 bits clear")
            }
            EncodeError::FieldTooWide { field, value, max } => {
                write!(f, "{field} {value} exceeds the field maximum {max}")
            }
            EncodeError::EmptyFrepBody => {
                write!(f, "frep body must contain at least one instruction")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

const I_MIN: i32 = -2048;
const I_MAX: i32 = 2047;

fn imm12(field: &'static str, value: i32) -> Result<(), EncodeError> {
    if (I_MIN..=I_MAX).contains(&value) {
        Ok(())
    } else {
        Err(EncodeError::ImmOutOfRange { field, value, min: I_MIN, max: I_MAX })
    }
}

fn offset(field: &'static str, value: i32, min: i32, max: i32) -> Result<(), EncodeError> {
    if !(min..=max).contains(&value) {
        return Err(EncodeError::ImmOutOfRange { field, value, min, max });
    }
    if value % 2 != 0 {
        return Err(EncodeError::MisalignedOffset { field, value });
    }
    Ok(())
}

fn narrow(field: &'static str, value: u32, max: u32) -> Result<(), EncodeError> {
    if value <= max {
        Ok(())
    } else {
        Err(EncodeError::FieldTooWide { field, value, max })
    }
}

pub(crate) const OPC_LOAD: u32 = 0x03;
pub(crate) const OPC_LOAD_FP: u32 = 0x07;
pub(crate) const OPC_CUSTOM0: u32 = 0x0B;
pub(crate) const OPC_MISC_MEM: u32 = 0x0F;
pub(crate) const OPC_OP_IMM: u32 = 0x13;
pub(crate) const OPC_AUIPC: u32 = 0x17;
pub(crate) const OPC_STORE: u32 = 0x23;
pub(crate) const OPC_STORE_FP: u32 = 0x27;
pub(crate) const OPC_CUSTOM1: u32 = 0x2B;
pub(crate) const OPC_OP: u32 = 0x33;
pub(crate) const OPC_LUI: u32 = 0x37;
pub(crate) const OPC_MADD: u32 = 0x43;
pub(crate) const OPC_CUSTOM2: u32 = 0x5B;
pub(crate) const OPC_OP_FP: u32 = 0x53;
pub(crate) const OPC_BRANCH: u32 = 0x63;
pub(crate) const OPC_JALR: u32 = 0x67;
pub(crate) const OPC_JAL: u32 = 0x6F;
pub(crate) const OPC_SYSTEM: u32 = 0x73;

/// Dynamic rounding-mode field value used for FP arithmetic encodings.
pub(crate) const RM_DYN: u32 = 0b111;

fn r_type(funct7: u32, rs2: u32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn i_type(imm: i32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (((imm as u32) & 0xfff) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn s_type(imm: i32, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 5 & 0x7f) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm & 0x1f) << 7)
        | opcode
}

fn b_type(offset: i32, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> u32 {
    let imm = offset as u32;
    ((imm >> 12 & 1) << 31)
        | ((imm >> 5 & 0x3f) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm >> 1 & 0xf) << 8)
        | ((imm >> 11 & 1) << 7)
        | opcode
}

fn u_type(imm: i32, rd: u32, opcode: u32) -> u32 {
    (imm as u32 & 0xfffff000) | (rd << 7) | opcode
}

fn j_type(offset: i32, rd: u32, opcode: u32) -> u32 {
    let imm = offset as u32;
    ((imm >> 20 & 1) << 31)
        | ((imm >> 1 & 0x3ff) << 21)
        | ((imm >> 11 & 1) << 20)
        | ((imm >> 12 & 0xff) << 12)
        | (rd << 7)
        | opcode
}

fn r4_type(rs3: u32, fmt: u32, rs2: u32, rs1: u32, rm: u32, rd: u32, opcode: u32) -> u32 {
    (rs3 << 27) | (fmt << 25) | (rs2 << 20) | (rs1 << 15) | (rm << 12) | (rd << 7) | opcode
}

impl Inst {
    /// Encodes this instruction into its 32-bit binary form.
    ///
    /// # Panics
    ///
    /// Panics if a field is out of range for its encoding. See
    /// [`Inst::try_encode`] for the fallible variant; the assembler layer
    /// (`snitch-asm`'s `ProgramBuilder`) validates ranges before
    /// constructing `Inst`s, so programs built through it never hit this.
    #[must_use]
    pub fn encode(&self) -> u32 {
        match self.try_encode() {
            Ok(word) => word,
            Err(e) => panic!("cannot encode `{self}`: {e}"),
        }
    }

    /// Encodes this instruction, or explains which field does not fit.
    ///
    /// # Errors
    ///
    /// Returns an [`EncodeError`] naming the offending field and its legal
    /// range when an immediate, offset, or extension field is unencodable.
    pub fn try_encode(&self) -> Result<u32, EncodeError> {
        self.validate()?;
        Ok(self.encode_raw())
    }

    /// Range-checks every field against its encoding slot.
    fn validate(&self) -> Result<(), EncodeError> {
        match *self {
            Inst::Lui { imm, .. } | Inst::Auipc { imm, .. } if imm & 0xfff != 0 => {
                return Err(EncodeError::LowBitsSet { value: imm });
            }
            Inst::Jal { offset: o, .. } => {
                offset("J-type offset", o, -(1 << 20), (1 << 20) - 2)?;
            }
            Inst::Branch { offset: o, .. } => offset("B-type offset", o, -4096, 4094)?,
            Inst::Jalr { offset: o, .. }
            | Inst::Load { offset: o, .. }
            | Inst::Flw { offset: o, .. }
            | Inst::Fld { offset: o, .. } => imm12("I-type offset", o)?,
            Inst::Store { offset: o, .. }
            | Inst::Fsw { offset: o, .. }
            | Inst::Fsd { offset: o, .. } => imm12("S-type offset", o)?,
            Inst::OpImm { op, imm, .. } => match op {
                AluImmOp::Slli | AluImmOp::Srli | AluImmOp::Srai => {
                    if !(0..=31).contains(&imm) {
                        return Err(EncodeError::ImmOutOfRange {
                            field: "shift amount",
                            value: imm,
                            min: 0,
                            max: 31,
                        });
                    }
                }
                _ => imm12("I-type immediate", imm)?,
            },
            Inst::Csr { csr, src, .. } => {
                narrow("CSR address", csr.into(), 4095)?;
                narrow("CSR source field", src.into(), 31)?;
            }
            Inst::Scfgwi { addr, .. } | Inst::Scfgri { addr, .. } => {
                narrow("SSR config address", addr.into(), 4095)?;
            }
            Inst::FrepO { max_inst, stagger_max, stagger_mask, .. }
            | Inst::FrepI { max_inst, stagger_max, stagger_mask, .. } => {
                if max_inst == 0 {
                    return Err(EncodeError::EmptyFrepBody);
                }
                narrow("frep stagger_max", stagger_max.into(), 15)?;
                narrow("frep stagger_mask", stagger_mask.into(), 15)?;
            }
            Inst::Dma { op: DmaOp::CpyI | DmaOp::StatI, imm5, .. } => {
                narrow("DMA config immediate", imm5.into(), 31)?;
            }
            _ => {}
        }
        Ok(())
    }

    /// The raw bit-packing; every field has been validated.
    #[allow(clippy::too_many_lines)]
    fn encode_raw(&self) -> u32 {
        match *self {
            Inst::Lui { rd, imm } => u_type(imm, rd.index().into(), OPC_LUI),
            Inst::Auipc { rd, imm } => u_type(imm, rd.index().into(), OPC_AUIPC),
            Inst::Jal { rd, offset } => j_type(offset, rd.index().into(), OPC_JAL),
            Inst::Jalr { rd, rs1, offset } => {
                i_type(offset, rs1.index().into(), 0b000, rd.index().into(), OPC_JALR)
            }
            Inst::Branch { op, rs1, rs2, offset } => {
                b_type(offset, rs2.index().into(), rs1.index().into(), op.funct3(), OPC_BRANCH)
            }
            Inst::Load { op, rd, rs1, offset } => {
                i_type(offset, rs1.index().into(), op.funct3(), rd.index().into(), OPC_LOAD)
            }
            Inst::Store { op, rs2, rs1, offset } => {
                s_type(offset, rs2.index().into(), rs1.index().into(), op.funct3(), OPC_STORE)
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                use crate::ops::AluImmOp::*;
                let (funct3, imm) = match op {
                    Addi => (0b000, imm),
                    Slti => (0b010, imm),
                    Sltiu => (0b011, imm),
                    Xori => (0b100, imm),
                    Ori => (0b110, imm),
                    Andi => (0b111, imm),
                    Slli => (0b001, imm & 0x1f),
                    Srli => (0b101, imm & 0x1f),
                    Srai => (0b101, (imm & 0x1f) | 0x400),
                };
                i_type(imm, rs1.index().into(), funct3, rd.index().into(), OPC_OP_IMM)
            }
            Inst::OpReg { op, rd, rs1, rs2 } => {
                use crate::ops::AluOp::*;
                let (funct7, funct3) = match op {
                    Add => (0x00, 0b000),
                    Sub => (0x20, 0b000),
                    Sll => (0x00, 0b001),
                    Slt => (0x00, 0b010),
                    Sltu => (0x00, 0b011),
                    Xor => (0x00, 0b100),
                    Srl => (0x00, 0b101),
                    Sra => (0x20, 0b101),
                    Or => (0x00, 0b110),
                    And => (0x00, 0b111),
                    Mul => (0x01, 0b000),
                    Mulh => (0x01, 0b001),
                    Mulhsu => (0x01, 0b010),
                    Mulhu => (0x01, 0b011),
                    Div => (0x01, 0b100),
                    Divu => (0x01, 0b101),
                    Rem => (0x01, 0b110),
                    Remu => (0x01, 0b111),
                };
                r_type(
                    funct7,
                    rs2.index().into(),
                    rs1.index().into(),
                    funct3,
                    rd.index().into(),
                    OPC_OP,
                )
            }
            Inst::Fence => 0x0ff0_000f,
            Inst::Ecall => 0x0000_0073,
            Inst::Ebreak => 0x0010_0073,
            Inst::Csr { op, rd, csr, src } => {
                ((u32::from(csr)) << 20)
                    | (u32::from(src) << 15)
                    | (op.funct3() << 12)
                    | (u32::from(rd.index()) << 7)
                    | OPC_SYSTEM
            }
            Inst::Flw { rd, rs1, offset } => {
                i_type(offset, rs1.index().into(), 0b010, rd.index().into(), OPC_LOAD_FP)
            }
            Inst::Fld { rd, rs1, offset } => {
                i_type(offset, rs1.index().into(), 0b011, rd.index().into(), OPC_LOAD_FP)
            }
            Inst::Fsw { rs2, rs1, offset } => {
                s_type(offset, rs2.index().into(), rs1.index().into(), 0b010, OPC_STORE_FP)
            }
            Inst::Fsd { rs2, rs1, offset } => {
                s_type(offset, rs2.index().into(), rs1.index().into(), 0b011, OPC_STORE_FP)
            }
            Inst::FpOp { op, fmt, rd, rs1, rs2 } => {
                let (base7, funct3, rs2f) = match op {
                    FpAluOp::Add => (0x00, RM_DYN, u32::from(rs2.index())),
                    FpAluOp::Sub => (0x04, RM_DYN, u32::from(rs2.index())),
                    FpAluOp::Mul => (0x08, RM_DYN, u32::from(rs2.index())),
                    FpAluOp::Div => (0x0C, RM_DYN, u32::from(rs2.index())),
                    FpAluOp::Sqrt => (0x2C, RM_DYN, 0),
                    FpAluOp::Min => (0x14, 0b000, u32::from(rs2.index())),
                    FpAluOp::Max => (0x14, 0b001, u32::from(rs2.index())),
                };
                r_type(
                    base7 | fmt.field(),
                    rs2f,
                    rs1.index().into(),
                    funct3,
                    rd.index().into(),
                    OPC_OP_FP,
                )
            }
            Inst::FpFma { op, fmt, rd, rs1, rs2, rs3 } => r4_type(
                rs3.index().into(),
                fmt.field(),
                rs2.index().into(),
                rs1.index().into(),
                RM_DYN,
                rd.index().into(),
                op.opcode(),
            ),
            Inst::FpSgnj { op, fmt, rd, rs1, rs2 } => r_type(
                0x10 | fmt.field(),
                rs2.index().into(),
                rs1.index().into(),
                op.funct3(),
                rd.index().into(),
                OPC_OP_FP,
            ),
            Inst::FpCmp { op, fmt, rd, rs1, rs2 } => r_type(
                0x50 | fmt.field(),
                rs2.index().into(),
                rs1.index().into(),
                op.funct3(),
                rd.index().into(),
                OPC_OP_FP,
            ),
            Inst::FpCvtF2I { to, fmt, rd, rs1 } => r_type(
                0x60 | fmt.field(),
                to.field(),
                rs1.index().into(),
                RM_DYN,
                rd.index().into(),
                OPC_OP_FP,
            ),
            Inst::FpCvtI2F { from, fmt, rd, rs1 } => r_type(
                0x68 | fmt.field(),
                from.field(),
                rs1.index().into(),
                RM_DYN,
                rd.index().into(),
                OPC_OP_FP,
            ),
            Inst::FpCvtF2F { to, rd, rs1 } => {
                // fcvt.s.d (to=S, rs2=1) and fcvt.d.s (to=D, rs2=0)
                let (funct7, rs2) = match to {
                    FpFmt::S => (0x20, FpFmt::D.field()),
                    FpFmt::D => (0x21, FpFmt::S.field()),
                };
                r_type(funct7, rs2, rs1.index().into(), RM_DYN, rd.index().into(), OPC_OP_FP)
            }
            Inst::FpMvF2X { rd, rs1 } => {
                r_type(0x70, 0, rs1.index().into(), 0b000, rd.index().into(), OPC_OP_FP)
            }
            Inst::FpMvX2F { rd, rs1 } => {
                r_type(0x78, 0, rs1.index().into(), 0b000, rd.index().into(), OPC_OP_FP)
            }
            Inst::FpClass { fmt, rd, rs1 } => r_type(
                0x70 | fmt.field(),
                0,
                rs1.index().into(),
                0b001,
                rd.index().into(),
                OPC_OP_FP,
            ),
            Inst::FrepO { rep, max_inst, stagger_max, stagger_mask } => {
                encode_frep(0b000, rep.index(), max_inst, stagger_max, stagger_mask)
            }
            Inst::FrepI { rep, max_inst, stagger_max, stagger_mask } => {
                encode_frep(0b001, rep.index(), max_inst, stagger_max, stagger_mask)
            }
            Inst::Scfgwi { value, addr } => {
                i_type(addr as i32, value.index().into(), 0b010, 0, OPC_CUSTOM2)
            }
            Inst::Scfgri { rd, addr } => {
                i_type(addr as i32, 0, 0b011, rd.index().into(), OPC_CUSTOM2)
            }
            Inst::Dma { op, rd, rs1, rs2, imm5 } => {
                let funct7 = match op {
                    DmaOp::Src => 0,
                    DmaOp::Dst => 1,
                    DmaOp::Str => 2,
                    DmaOp::Rep => 3,
                    DmaOp::CpyI => 4,
                    DmaOp::StatI => 5,
                };
                let rs2f = match op {
                    DmaOp::CpyI | DmaOp::StatI => u32::from(imm5 & 0x1f),
                    _ => u32::from(rs2.index()),
                };
                r_type(funct7, rs2f, rs1.index().into(), 0b100, rd.index().into(), OPC_CUSTOM2)
            }
            Inst::CopiftCmp { op, rd, rs1, rs2 } => r_type(
                0x50 | FpFmt::D.field(),
                rs2.index().into(),
                rs1.index().into(),
                op.funct3(),
                rd.index().into(),
                OPC_CUSTOM1,
            ),
            Inst::CopiftCvtF2I { to, rd, rs1 } => r_type(
                0x60 | FpFmt::D.field(),
                to.field(),
                rs1.index().into(),
                RM_DYN,
                rd.index().into(),
                OPC_CUSTOM1,
            ),
            Inst::CopiftCvtI2F { from, rd, rs1 } => r_type(
                0x68 | FpFmt::D.field(),
                from.field(),
                rs1.index().into(),
                RM_DYN,
                rd.index().into(),
                OPC_CUSTOM1,
            ),
            Inst::CopiftClass { rd, rs1 } => r_type(
                0x70 | FpFmt::D.field(),
                0,
                rs1.index().into(),
                0b001,
                rd.index().into(),
                OPC_CUSTOM1,
            ),
        }
    }
}

fn encode_frep(funct3: u32, rep: u8, max_inst: u8, stagger_max: u8, stagger_mask: u8) -> u32 {
    let imm = (u32::from(stagger_mask) << 8) | u32::from(max_inst - 1);
    (imm << 20)
        | (u32::from(rep) << 15)
        | (funct3 << 12)
        | (u32::from(stagger_max) << 7)
        | OPC_CUSTOM0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::*;
    use crate::reg::{FpReg, IntReg};

    #[test]
    fn known_rv32i_encodings() {
        // Cross-checked against riscv-tests / gnu as output.
        let addi = Inst::OpImm { op: AluImmOp::Addi, rd: IntReg::A0, rs1: IntReg::A1, imm: 42 };
        assert_eq!(addi.encode(), 0x02a5_8513);
        let add = Inst::OpReg { op: AluOp::Add, rd: IntReg::A0, rs1: IntReg::A1, rs2: IntReg::A2 };
        assert_eq!(add.encode(), 0x00c5_8533);
        let lw = Inst::Load { op: LoadOp::Lw, rd: IntReg::T0, rs1: IntReg::SP, offset: 8 };
        assert_eq!(lw.encode(), 0x0081_2283);
        let sw = Inst::Store { op: StoreOp::Sw, rs2: IntReg::T0, rs1: IntReg::SP, offset: 8 };
        assert_eq!(sw.encode(), 0x0051_2423);
        assert_eq!(Inst::Ecall.encode(), 0x0000_0073);
        assert_eq!(Inst::NOP.encode(), 0x0000_0013);
    }

    #[test]
    fn known_branch_and_jump_encodings() {
        let beq = Inst::Branch { op: BranchOp::Eq, rs1: IntReg::A0, rs2: IntReg::A1, offset: -4 };
        assert_eq!(beq.encode(), 0xfeb5_0ee3);
        let jal = Inst::Jal { rd: IntReg::RA, offset: 16 };
        assert_eq!(jal.encode(), 0x0100_00ef);
        let lui = Inst::Lui { rd: IntReg::A0, imm: 0x1234_5000 };
        assert_eq!(lui.encode(), 0x1234_5537);
    }

    #[test]
    fn known_fp_encodings() {
        // fadd.d fa0, fa1, fa2 with dynamic rounding: 0x02b5f553
        let fadd = Inst::FpOp {
            op: FpAluOp::Add,
            fmt: FpFmt::D,
            rd: FpReg::FA0,
            rs1: FpReg::FA1,
            rs2: FpReg::FA2,
        };
        assert_eq!(fadd.encode(), 0x02c5_f553);
        // fmadd.d fa0, fa1, fa2, fa3
        let fma = Inst::FpFma {
            op: FmaOp::Madd,
            fmt: FpFmt::D,
            rd: FpReg::FA0,
            rs1: FpReg::FA1,
            rs2: FpReg::FA2,
            rs3: FpReg::FA3,
        };
        assert_eq!(fma.encode(), 0x6ac5_f543);
        // fld fa3, 0(a3)
        let fld = Inst::Fld { rd: FpReg::FA3, rs1: IntReg::A3, offset: 0 };
        assert_eq!(fld.encode(), 0x0006_b687);
    }

    #[test]
    fn copift_encodings_use_custom1() {
        let cmp =
            Inst::CopiftCmp { op: FpCmpOp::Lt, rd: FpReg::FA0, rs1: FpReg::FA1, rs2: FpReg::FA2 };
        assert_eq!(cmp.encode() & 0x7f, OPC_CUSTOM1);
        // Same funct7/funct3 as the OP-FP original, only the opcode differs.
        let std_cmp = Inst::FpCmp {
            op: FpCmpOp::Lt,
            fmt: FpFmt::D,
            rd: IntReg::A0,
            rs1: FpReg::FA1,
            rs2: FpReg::FA2,
        };
        assert_eq!(cmp.encode() >> 25, std_cmp.encode() >> 25);
        assert_eq!((cmp.encode() >> 12) & 7, (std_cmp.encode() >> 12) & 7);
    }

    #[test]
    fn frep_fields_roundtrip_bits() {
        let f = Inst::FrepO { rep: IntReg::T0, max_inst: 9, stagger_max: 3, stagger_mask: 0b1001 };
        let w = f.encode();
        assert_eq!(w & 0x7f, OPC_CUSTOM0);
        assert_eq!((w >> 20) & 0xff, 8); // max_inst - 1
        assert_eq!((w >> 28) & 0xf, 0b1001);
        assert_eq!((w >> 7) & 0x1f, 3);
        assert_eq!((w >> 15) & 0x1f, 5); // t0
    }
}
