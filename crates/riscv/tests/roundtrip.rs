//! Property tests: every constructible instruction encodes to a word that
//! decodes back to the identical instruction.

use proptest::prelude::*;
use snitch_riscv::inst::Inst;
use snitch_riscv::ops::*;
use snitch_riscv::reg::{FpReg, IntReg};

fn int_reg() -> impl Strategy<Value = IntReg> {
    (0u8..32).prop_map(IntReg::new)
}

fn fp_reg() -> impl Strategy<Value = FpReg> {
    (0u8..32).prop_map(FpReg::new)
}

fn imm12() -> impl Strategy<Value = i32> {
    -2048i32..=2047
}

fn branch_offset() -> impl Strategy<Value = i32> {
    (-2048i32..=2047).prop_map(|x| x * 2)
}

fn jal_offset() -> impl Strategy<Value = i32> {
    (-(1i32 << 19)..(1 << 19)).prop_map(|x| x * 2)
}

fn fmt() -> impl Strategy<Value = FpFmt> {
    prop_oneof![Just(FpFmt::S), Just(FpFmt::D)]
}

fn cmp_op() -> impl Strategy<Value = FpCmpOp> {
    prop_oneof![Just(FpCmpOp::Eq), Just(FpCmpOp::Lt), Just(FpCmpOp::Le)]
}

fn cvt() -> impl Strategy<Value = IntCvt> {
    prop_oneof![Just(IntCvt::W), Just(IntCvt::Wu)]
}

fn alu_imm_op() -> impl Strategy<Value = AluImmOp> {
    prop_oneof![
        Just(AluImmOp::Addi),
        Just(AluImmOp::Slti),
        Just(AluImmOp::Sltiu),
        Just(AluImmOp::Xori),
        Just(AluImmOp::Ori),
        Just(AluImmOp::Andi),
        Just(AluImmOp::Slli),
        Just(AluImmOp::Srli),
        Just(AluImmOp::Srai),
    ]
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Mul),
        Just(AluOp::Mulh),
        Just(AluOp::Mulhsu),
        Just(AluOp::Mulhu),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu),
    ]
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (int_reg(), (-(1i32 << 19)..(1 << 19)).prop_map(|x| x << 12))
            .prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
        (int_reg(), (-(1i32 << 19)..(1 << 19)).prop_map(|x| x << 12))
            .prop_map(|(rd, imm)| Inst::Auipc { rd, imm }),
        (int_reg(), jal_offset()).prop_map(|(rd, offset)| Inst::Jal { rd, offset }),
        (int_reg(), int_reg(), imm12()).prop_map(|(rd, rs1, offset)| Inst::Jalr { rd, rs1, offset }),
        (
            prop_oneof![
                Just(BranchOp::Eq),
                Just(BranchOp::Ne),
                Just(BranchOp::Lt),
                Just(BranchOp::Ge),
                Just(BranchOp::Ltu),
                Just(BranchOp::Geu)
            ],
            int_reg(),
            int_reg(),
            branch_offset()
        )
            .prop_map(|(op, rs1, rs2, offset)| Inst::Branch { op, rs1, rs2, offset }),
        (
            prop_oneof![Just(LoadOp::Lb), Just(LoadOp::Lh), Just(LoadOp::Lw), Just(LoadOp::Lbu), Just(LoadOp::Lhu)],
            int_reg(),
            int_reg(),
            imm12()
        )
            .prop_map(|(op, rd, rs1, offset)| Inst::Load { op, rd, rs1, offset }),
        (
            prop_oneof![Just(StoreOp::Sb), Just(StoreOp::Sh), Just(StoreOp::Sw)],
            int_reg(),
            int_reg(),
            imm12()
        )
            .prop_map(|(op, rs2, rs1, offset)| Inst::Store { op, rs2, rs1, offset }),
        (alu_imm_op(), int_reg(), int_reg(), imm12()).prop_map(|(op, rd, rs1, imm)| {
            let imm = match op {
                AluImmOp::Slli | AluImmOp::Srli | AluImmOp::Srai => imm & 0x1f,
                _ => imm,
            };
            Inst::OpImm { op, rd, rs1, imm }
        }),
        (alu_op(), int_reg(), int_reg(), int_reg())
            .prop_map(|(op, rd, rs1, rs2)| Inst::OpReg { op, rd, rs1, rs2 }),
        Just(Inst::Fence),
        Just(Inst::Ecall),
        Just(Inst::Ebreak),
        (
            prop_oneof![Just(CsrOp::Rw), Just(CsrOp::Rs), Just(CsrOp::Rc), Just(CsrOp::Rwi), Just(CsrOp::Rsi), Just(CsrOp::Rci)],
            int_reg(),
            0u16..4096,
            0u8..32
        )
            .prop_map(|(op, rd, csr, src)| Inst::Csr { op, rd, csr, src }),
        (fp_reg(), int_reg(), imm12()).prop_map(|(rd, rs1, offset)| Inst::Flw { rd, rs1, offset }),
        (fp_reg(), int_reg(), imm12()).prop_map(|(rd, rs1, offset)| Inst::Fld { rd, rs1, offset }),
        (fp_reg(), int_reg(), imm12()).prop_map(|(rs2, rs1, offset)| Inst::Fsw { rs2, rs1, offset }),
        (fp_reg(), int_reg(), imm12()).prop_map(|(rs2, rs1, offset)| Inst::Fsd { rs2, rs1, offset }),
        (
            prop_oneof![
                Just(FpAluOp::Add),
                Just(FpAluOp::Sub),
                Just(FpAluOp::Mul),
                Just(FpAluOp::Div),
                Just(FpAluOp::Min),
                Just(FpAluOp::Max)
            ],
            fmt(),
            fp_reg(),
            fp_reg(),
            fp_reg()
        )
            .prop_map(|(op, fmt, rd, rs1, rs2)| Inst::FpOp { op, fmt, rd, rs1, rs2 }),
        (fmt(), fp_reg(), fp_reg()).prop_map(|(fmt, rd, rs1)| Inst::FpOp {
            op: FpAluOp::Sqrt,
            fmt,
            rd,
            rs1,
            rs2: FpReg::FT0,
        }),
        (
            prop_oneof![Just(FmaOp::Madd), Just(FmaOp::Msub), Just(FmaOp::Nmsub), Just(FmaOp::Nmadd)],
            fmt(),
            fp_reg(),
            fp_reg(),
            fp_reg(),
            fp_reg()
        )
            .prop_map(|(op, fmt, rd, rs1, rs2, rs3)| Inst::FpFma { op, fmt, rd, rs1, rs2, rs3 }),
        (
            prop_oneof![Just(SgnjOp::Sgnj), Just(SgnjOp::Sgnjn), Just(SgnjOp::Sgnjx)],
            fmt(),
            fp_reg(),
            fp_reg(),
            fp_reg()
        )
            .prop_map(|(op, fmt, rd, rs1, rs2)| Inst::FpSgnj { op, fmt, rd, rs1, rs2 }),
        (cmp_op(), fmt(), int_reg(), fp_reg(), fp_reg())
            .prop_map(|(op, fmt, rd, rs1, rs2)| Inst::FpCmp { op, fmt, rd, rs1, rs2 }),
        (cvt(), fmt(), int_reg(), fp_reg())
            .prop_map(|(to, fmt, rd, rs1)| Inst::FpCvtF2I { to, fmt, rd, rs1 }),
        (cvt(), fmt(), fp_reg(), int_reg())
            .prop_map(|(from, fmt, rd, rs1)| Inst::FpCvtI2F { from, fmt, rd, rs1 }),
        (fmt(), fp_reg(), fp_reg()).prop_map(|(to, rd, rs1)| Inst::FpCvtF2F { to, rd, rs1 }),
        (int_reg(), fp_reg()).prop_map(|(rd, rs1)| Inst::FpMvF2X { rd, rs1 }),
        (fp_reg(), int_reg()).prop_map(|(rd, rs1)| Inst::FpMvX2F { rd, rs1 }),
        (fmt(), int_reg(), fp_reg()).prop_map(|(fmt, rd, rs1)| Inst::FpClass { fmt, rd, rs1 }),
        (int_reg(), 1u8..=255, 0u8..16, 0u8..16).prop_map(|(rep, max_inst, stagger_max, stagger_mask)| {
            Inst::FrepO { rep, max_inst, stagger_max, stagger_mask }
        }),
        (int_reg(), 1u8..=255, 0u8..16, 0u8..16).prop_map(|(rep, max_inst, stagger_max, stagger_mask)| {
            Inst::FrepI { rep, max_inst, stagger_max, stagger_mask }
        }),
        (int_reg(), 0u16..0xd0).prop_filter_map("valid ssr addr", |(value, addr)| {
            snitch_riscv::csr::SsrCfgWord::from_addr(addr).map(|_| Inst::Scfgwi { value, addr })
        }),
        (int_reg(), 0u16..0xd0).prop_filter_map("valid ssr addr", |(rd, addr)| {
            snitch_riscv::csr::SsrCfgWord::from_addr(addr).map(|_| Inst::Scfgri { rd, addr })
        }),
        (int_reg(), int_reg()).prop_map(|(rs1, rs2)| Inst::Dma {
            op: DmaOp::Src,
            rd: IntReg::ZERO,
            rs1,
            rs2,
            imm5: 0
        }),
        (int_reg(), int_reg()).prop_map(|(rs1, rs2)| Inst::Dma {
            op: DmaOp::Dst,
            rd: IntReg::ZERO,
            rs1,
            rs2,
            imm5: 0
        }),
        (int_reg(), int_reg(), 0u8..32).prop_map(|(rd, rs1, imm5)| Inst::Dma {
            op: DmaOp::CpyI,
            rd,
            rs1,
            rs2: IntReg::ZERO,
            imm5
        }),
        (int_reg(), 0u8..32).prop_map(|(rd, imm5)| Inst::Dma {
            op: DmaOp::StatI,
            rd,
            rs1: IntReg::ZERO,
            rs2: IntReg::ZERO,
            imm5
        }),
        (cmp_op(), fp_reg(), fp_reg(), fp_reg())
            .prop_map(|(op, rd, rs1, rs2)| Inst::CopiftCmp { op, rd, rs1, rs2 }),
        (cvt(), fp_reg(), fp_reg()).prop_map(|(to, rd, rs1)| Inst::CopiftCvtF2I { to, rd, rs1 }),
        (cvt(), fp_reg(), fp_reg()).prop_map(|(from, rd, rs1)| Inst::CopiftCvtI2F { from, rd, rs1 }),
        (fp_reg(), fp_reg()).prop_map(|(rd, rs1)| Inst::CopiftClass { rd, rs1 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        let word = inst.encode();
        let decoded = Inst::decode(word).expect("every encodable instruction must decode");
        prop_assert_eq!(decoded, inst);
    }

    #[test]
    fn disassembly_is_nonempty_and_stable(inst in arb_inst()) {
        let text = inst.to_string();
        prop_assert!(!text.is_empty());
        // Disassembly of the decoded instruction matches the original's.
        let decoded = Inst::decode(inst.encode()).unwrap();
        prop_assert_eq!(decoded.to_string(), text);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = Inst::decode(word);
    }

    #[test]
    fn defs_and_uses_are_bounded(inst in arb_inst()) {
        prop_assert!(inst.uses().len() <= 3);
        prop_assert!(inst.defs().len() <= 1);
    }
}
