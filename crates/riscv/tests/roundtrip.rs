//! Property tests: every constructible instruction encodes to a word that
//! decodes back to the identical instruction.
//!
//! Implemented with a deterministic xorshift generator instead of an
//! external property-testing crate so the suite has zero dependencies.

use snitch_riscv::inst::Inst;
use snitch_riscv::ops::{
    AluImmOp, AluOp, BranchOp, CsrOp, DmaOp, FmaOp, FpAluOp, FpCmpOp, FpFmt, IntCvt, LoadOp,
    SgnjOp, StoreOp,
};
use snitch_riscv::reg::{FpReg, IntReg};

/// Deterministic xorshift64* generator — reproducible across runs.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in `lo..=hi`.
    fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        lo + (self.below((i64::from(hi) - i64::from(lo) + 1) as u64) as i32)
    }

    fn int_reg(&mut self) -> IntReg {
        IntReg::new(self.below(32) as u8)
    }

    fn fp_reg(&mut self) -> FpReg {
        FpReg::new(self.below(32) as u8)
    }

    fn imm12(&mut self) -> i32 {
        self.range_i32(-2048, 2047)
    }

    fn fmt(&mut self) -> FpFmt {
        if self.below(2) == 0 {
            FpFmt::S
        } else {
            FpFmt::D
        }
    }

    fn cmp_op(&mut self) -> FpCmpOp {
        [FpCmpOp::Eq, FpCmpOp::Lt, FpCmpOp::Le][self.below(3) as usize]
    }

    fn cvt(&mut self) -> IntCvt {
        if self.below(2) == 0 {
            IntCvt::W
        } else {
            IntCvt::Wu
        }
    }

    /// A valid SSR config address (one accepted by `SsrCfgWord::from_addr`).
    fn ssr_addr(&mut self) -> u16 {
        loop {
            let addr = self.below(0xd0) as u16;
            if snitch_riscv::csr::SsrCfgWord::from_addr(addr).is_some() {
                return addr;
            }
        }
    }
}

const ALU_IMM_OPS: [AluImmOp; 9] = [
    AluImmOp::Addi,
    AluImmOp::Slti,
    AluImmOp::Sltiu,
    AluImmOp::Xori,
    AluImmOp::Ori,
    AluImmOp::Andi,
    AluImmOp::Slli,
    AluImmOp::Srli,
    AluImmOp::Srai,
];

const ALU_OPS: [AluOp; 18] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Sll,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Xor,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Or,
    AluOp::And,
    AluOp::Mul,
    AluOp::Mulh,
    AluOp::Mulhsu,
    AluOp::Mulhu,
    AluOp::Div,
    AluOp::Divu,
    AluOp::Rem,
    AluOp::Remu,
];

/// Draws one arbitrary instruction covering every encodable variant.
#[allow(clippy::too_many_lines)]
fn arb_inst(r: &mut Rng) -> Inst {
    match r.below(33) {
        0 => Inst::Lui { rd: r.int_reg(), imm: r.range_i32(-(1 << 19), (1 << 19) - 1) << 12 },
        1 => Inst::Auipc { rd: r.int_reg(), imm: r.range_i32(-(1 << 19), (1 << 19) - 1) << 12 },
        2 => Inst::Jal { rd: r.int_reg(), offset: r.range_i32(-(1 << 19), (1 << 19) - 1) * 2 },
        3 => Inst::Jalr { rd: r.int_reg(), rs1: r.int_reg(), offset: r.imm12() },
        4 => {
            let op = [
                BranchOp::Eq,
                BranchOp::Ne,
                BranchOp::Lt,
                BranchOp::Ge,
                BranchOp::Ltu,
                BranchOp::Geu,
            ][r.below(6) as usize];
            Inst::Branch { op, rs1: r.int_reg(), rs2: r.int_reg(), offset: r.imm12() * 2 }
        }
        5 => {
            let op =
                [LoadOp::Lb, LoadOp::Lh, LoadOp::Lw, LoadOp::Lbu, LoadOp::Lhu][r.below(5) as usize];
            Inst::Load { op, rd: r.int_reg(), rs1: r.int_reg(), offset: r.imm12() }
        }
        6 => {
            let op = [StoreOp::Sb, StoreOp::Sh, StoreOp::Sw][r.below(3) as usize];
            Inst::Store { op, rs2: r.int_reg(), rs1: r.int_reg(), offset: r.imm12() }
        }
        7 => {
            let op = ALU_IMM_OPS[r.below(9) as usize];
            let imm = match op {
                AluImmOp::Slli | AluImmOp::Srli | AluImmOp::Srai => r.imm12() & 0x1f,
                _ => r.imm12(),
            };
            Inst::OpImm { op, rd: r.int_reg(), rs1: r.int_reg(), imm }
        }
        8 => Inst::OpReg {
            op: ALU_OPS[r.below(18) as usize],
            rd: r.int_reg(),
            rs1: r.int_reg(),
            rs2: r.int_reg(),
        },
        9 => Inst::Fence,
        10 => Inst::Ecall,
        11 => Inst::Ebreak,
        12 => {
            let op = [CsrOp::Rw, CsrOp::Rs, CsrOp::Rc, CsrOp::Rwi, CsrOp::Rsi, CsrOp::Rci]
                [r.below(6) as usize];
            Inst::Csr { op, rd: r.int_reg(), csr: r.below(4096) as u16, src: r.below(32) as u8 }
        }
        13 => Inst::Flw { rd: r.fp_reg(), rs1: r.int_reg(), offset: r.imm12() },
        14 => Inst::Fld { rd: r.fp_reg(), rs1: r.int_reg(), offset: r.imm12() },
        15 => Inst::Fsw { rs2: r.fp_reg(), rs1: r.int_reg(), offset: r.imm12() },
        16 => Inst::Fsd { rs2: r.fp_reg(), rs1: r.int_reg(), offset: r.imm12() },
        17 => {
            let op = [
                FpAluOp::Add,
                FpAluOp::Sub,
                FpAluOp::Mul,
                FpAluOp::Div,
                FpAluOp::Min,
                FpAluOp::Max,
            ][r.below(6) as usize];
            Inst::FpOp { op, fmt: r.fmt(), rd: r.fp_reg(), rs1: r.fp_reg(), rs2: r.fp_reg() }
        }
        18 => Inst::FpOp {
            op: FpAluOp::Sqrt,
            fmt: r.fmt(),
            rd: r.fp_reg(),
            rs1: r.fp_reg(),
            rs2: FpReg::FT0,
        },
        19 => {
            let op = [FmaOp::Madd, FmaOp::Msub, FmaOp::Nmsub, FmaOp::Nmadd][r.below(4) as usize];
            Inst::FpFma {
                op,
                fmt: r.fmt(),
                rd: r.fp_reg(),
                rs1: r.fp_reg(),
                rs2: r.fp_reg(),
                rs3: r.fp_reg(),
            }
        }
        20 => {
            let op = [SgnjOp::Sgnj, SgnjOp::Sgnjn, SgnjOp::Sgnjx][r.below(3) as usize];
            Inst::FpSgnj { op, fmt: r.fmt(), rd: r.fp_reg(), rs1: r.fp_reg(), rs2: r.fp_reg() }
        }
        21 => Inst::FpCmp {
            op: r.cmp_op(),
            fmt: r.fmt(),
            rd: r.int_reg(),
            rs1: r.fp_reg(),
            rs2: r.fp_reg(),
        },
        22 => Inst::FpCvtF2I { to: r.cvt(), fmt: r.fmt(), rd: r.int_reg(), rs1: r.fp_reg() },
        23 => Inst::FpCvtI2F { from: r.cvt(), fmt: r.fmt(), rd: r.fp_reg(), rs1: r.int_reg() },
        24 => Inst::FpCvtF2F { to: r.fmt(), rd: r.fp_reg(), rs1: r.fp_reg() },
        25 => Inst::FpMvF2X { rd: r.int_reg(), rs1: r.fp_reg() },
        26 => Inst::FpMvX2F { rd: r.fp_reg(), rs1: r.int_reg() },
        27 => Inst::FpClass { fmt: r.fmt(), rd: r.int_reg(), rs1: r.fp_reg() },
        28 => Inst::FrepO {
            rep: r.int_reg(),
            max_inst: 1 + r.below(255) as u8,
            stagger_max: r.below(16) as u8,
            stagger_mask: r.below(16) as u8,
        },
        29 => Inst::FrepI {
            rep: r.int_reg(),
            max_inst: 1 + r.below(255) as u8,
            stagger_max: r.below(16) as u8,
            stagger_mask: r.below(16) as u8,
        },
        30 => {
            if r.below(2) == 0 {
                Inst::Scfgwi { value: r.int_reg(), addr: r.ssr_addr() }
            } else {
                Inst::Scfgri { rd: r.int_reg(), addr: r.ssr_addr() }
            }
        }
        31 => match r.below(4) {
            0 => Inst::Dma {
                op: DmaOp::Src,
                rd: IntReg::ZERO,
                rs1: r.int_reg(),
                rs2: r.int_reg(),
                imm5: 0,
            },
            1 => Inst::Dma {
                op: DmaOp::Dst,
                rd: IntReg::ZERO,
                rs1: r.int_reg(),
                rs2: r.int_reg(),
                imm5: 0,
            },
            2 => Inst::Dma {
                op: DmaOp::CpyI,
                rd: r.int_reg(),
                rs1: r.int_reg(),
                rs2: IntReg::ZERO,
                imm5: r.below(32) as u8,
            },
            _ => Inst::Dma {
                op: DmaOp::StatI,
                rd: r.int_reg(),
                rs1: IntReg::ZERO,
                rs2: IntReg::ZERO,
                imm5: r.below(32) as u8,
            },
        },
        _ => match r.below(4) {
            0 => {
                Inst::CopiftCmp { op: r.cmp_op(), rd: r.fp_reg(), rs1: r.fp_reg(), rs2: r.fp_reg() }
            }
            1 => Inst::CopiftCvtF2I { to: r.cvt(), rd: r.fp_reg(), rs1: r.fp_reg() },
            2 => Inst::CopiftCvtI2F { from: r.cvt(), rd: r.fp_reg(), rs1: r.fp_reg() },
            _ => Inst::CopiftClass { rd: r.fp_reg(), rs1: r.fp_reg() },
        },
    }
}

const CASES: usize = 4096;

#[test]
fn encode_decode_roundtrip() {
    let mut r = Rng::new(0xC0F1_F700_0000_0001);
    for i in 0..CASES {
        let inst = arb_inst(&mut r);
        let word = inst.encode();
        let decoded = Inst::decode(word)
            .unwrap_or_else(|e| panic!("case {i}: `{inst}` ({word:#010x}) failed to decode: {e}"));
        assert_eq!(decoded, inst, "case {i}: {word:#010x} round-trip");
    }
}

#[test]
fn disassembly_is_nonempty_and_stable() {
    let mut r = Rng::new(0xC0F1_F700_0000_0002);
    for _ in 0..CASES {
        let inst = arb_inst(&mut r);
        let text = inst.to_string();
        assert!(!text.is_empty());
        let decoded = Inst::decode(inst.encode()).unwrap();
        assert_eq!(decoded.to_string(), text);
    }
}

#[test]
fn decode_never_panics() {
    let mut r = Rng::new(0xC0F1_F700_0000_0003);
    // Random words plus structured low-entropy patterns around opcode space.
    for _ in 0..65_536 {
        let _ = Inst::decode(r.next() as u32);
    }
    for low in 0u32..=0x7f {
        for high in [0u32, 0x1, 0xfff_ffff, 0x800_0000, 0x555_5555] {
            let _ = Inst::decode((high << 7) | low);
        }
    }
}

#[test]
fn every_arbitrary_inst_try_encodes() {
    // `arb_inst` only produces in-range fields, so the fallible encoder must
    // accept all of them and agree with `encode` bit-for-bit.
    let mut r = Rng::new(0xC0F1_F700_0000_0006);
    for i in 0..CASES {
        let inst = arb_inst(&mut r);
        let word = inst.try_encode().unwrap_or_else(|e| panic!("case {i}: `{inst}`: {e}"));
        assert_eq!(word, inst.encode(), "case {i}: `{inst}`");
    }
}

#[test]
fn try_encode_boundaries() {
    use snitch_riscv::encode::EncodeError;
    let x = IntReg::A0;
    let f = FpReg::FA0;

    // I-type immediates: ±2048 boundary.
    let imm = |v| Inst::OpImm { op: AluImmOp::Addi, rd: x, rs1: x, imm: v };
    assert!(imm(2047).try_encode().is_ok());
    assert!(imm(-2048).try_encode().is_ok());
    assert!(matches!(imm(2048).try_encode(), Err(EncodeError::ImmOutOfRange { max: 2047, .. })));
    assert!(matches!(imm(-2049).try_encode(), Err(EncodeError::ImmOutOfRange { .. })));
    let load = |v| Inst::Load { op: LoadOp::Lw, rd: x, rs1: x, offset: v };
    assert!(load(-2048).try_encode().is_ok());
    assert!(load(2048).try_encode().is_err());
    assert!(Inst::Fld { rd: f, rs1: x, offset: 2047 }.try_encode().is_ok());
    assert!(Inst::Fld { rd: f, rs1: x, offset: -2049 }.try_encode().is_err());

    // S-type: same range through stores.
    let store = |v| Inst::Store { op: StoreOp::Sw, rs2: x, rs1: x, offset: v };
    assert!(store(2047).try_encode().is_ok());
    assert!(store(2048).try_encode().is_err());
    assert!(Inst::Fsd { rs2: f, rs1: x, offset: -2048 }.try_encode().is_ok());
    assert!(Inst::Fsd { rs2: f, rs1: x, offset: -2049 }.try_encode().is_err());

    // Shift amounts live in 0..=31, not the I-type range.
    let shift = |v| Inst::OpImm { op: AluImmOp::Slli, rd: x, rs1: x, imm: v };
    assert!(shift(31).try_encode().is_ok());
    assert!(matches!(shift(32).try_encode(), Err(EncodeError::ImmOutOfRange { max: 31, .. })));
    assert!(shift(-1).try_encode().is_err());

    // B-type: ±4 KiB, even.
    let br = |v| Inst::Branch { op: BranchOp::Eq, rs1: x, rs2: x, offset: v };
    assert!(br(4094).try_encode().is_ok());
    assert!(br(-4096).try_encode().is_ok());
    assert!(br(4096).try_encode().is_err());
    assert!(matches!(br(13).try_encode(), Err(EncodeError::MisalignedOffset { .. })));

    // J-type: ±1 MiB, even.
    let jal = |v| Inst::Jal { rd: x, offset: v };
    assert!(jal((1 << 20) - 2).try_encode().is_ok());
    assert!(jal(-(1 << 20)).try_encode().is_ok());
    assert!(jal(1 << 20).try_encode().is_err());
    assert!(matches!(jal(3).try_encode(), Err(EncodeError::MisalignedOffset { .. })));

    // U-type: low 12 bits must be clear.
    assert!(Inst::Lui { rd: x, imm: 0x1234_5000_u32 as i32 }.try_encode().is_ok());
    assert!(matches!(
        Inst::Lui { rd: x, imm: 0x1234_5001 }.try_encode(),
        Err(EncodeError::LowBitsSet { .. })
    ));
    assert!(Inst::Auipc { rd: x, imm: 0x800 }.try_encode().is_err());

    // CSR address and immediate-source fields.
    let csr = |c, s| Inst::Csr { op: CsrOp::Rw, rd: x, csr: c, src: s };
    assert!(csr(4095, 31).try_encode().is_ok());
    assert!(matches!(csr(4096, 0).try_encode(), Err(EncodeError::FieldTooWide { .. })));
    assert!(csr(0, 32).try_encode().is_err());

    // SSR config word addresses are 12-bit.
    assert!(Inst::Scfgwi { value: x, addr: 4095 }.try_encode().is_ok());
    assert!(Inst::Scfgwi { value: x, addr: 4096 }.try_encode().is_err());
    assert!(Inst::Scfgri { rd: x, addr: 4096 }.try_encode().is_err());

    // FREP: non-empty body, 4-bit stagger fields.
    let frep = |mi, smax, smask| Inst::FrepO {
        rep: x,
        max_inst: mi,
        stagger_max: smax,
        stagger_mask: smask,
    };
    assert!(frep(1, 15, 15).try_encode().is_ok());
    assert!(matches!(frep(0, 0, 0).try_encode(), Err(EncodeError::EmptyFrepBody)));
    assert!(frep(1, 16, 0).try_encode().is_err());
    assert!(frep(1, 0, 16).try_encode().is_err());

    // DMA immediate config field is 5-bit (register-operand forms ignore it).
    let dma = |op, imm5| Inst::Dma { op, rd: x, rs1: x, rs2: IntReg::ZERO, imm5 };
    assert!(dma(DmaOp::CpyI, 31).try_encode().is_ok());
    assert!(dma(DmaOp::CpyI, 32).try_encode().is_err());
    assert!(dma(DmaOp::StatI, 32).try_encode().is_err());
    assert!(dma(DmaOp::Src, 32).try_encode().is_ok());

    // Errors render with the offending value and its legal range.
    let msg = imm(4000).try_encode().unwrap_err().to_string();
    assert!(msg.contains("4000") && msg.contains("2047"), "{msg}");
}

#[test]
fn defs_and_uses_are_bounded() {
    let mut r = Rng::new(0xC0F1_F700_0000_0004);
    for _ in 0..CASES {
        let inst = arb_inst(&mut r);
        assert!(inst.uses().len() <= 3);
        assert!(inst.defs().len() <= 1);
    }
}
