//! Disassembly completeness: every constructible [`Inst`] variant — across
//! every sub-operation enum, including the COPIFT custom-1 twins and the
//! SSR/FREP/DMA configuration ops — must render non-empty, stable text.
//! The tracing subsystem's text and Perfetto sinks print instructions via
//! this `Display` impl, so a silent gap here would produce broken traces.

use snitch_riscv::inst::Inst;
use snitch_riscv::ops::{
    AluImmOp, AluOp, BranchOp, CsrOp, DmaOp, FmaOp, FpAluOp, FpCmpOp, FpFmt, IntCvt, LoadOp,
    SgnjOp, StoreOp,
};
use snitch_riscv::reg::{FpReg, IntReg};

const ALU_IMM: [AluImmOp; 9] = [
    AluImmOp::Addi,
    AluImmOp::Slti,
    AluImmOp::Sltiu,
    AluImmOp::Xori,
    AluImmOp::Ori,
    AluImmOp::Andi,
    AluImmOp::Slli,
    AluImmOp::Srli,
    AluImmOp::Srai,
];
const ALU: [AluOp; 18] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Sll,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Xor,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Or,
    AluOp::And,
    AluOp::Mul,
    AluOp::Mulh,
    AluOp::Mulhsu,
    AluOp::Mulhu,
    AluOp::Div,
    AluOp::Divu,
    AluOp::Rem,
    AluOp::Remu,
];
const BRANCH: [BranchOp; 6] =
    [BranchOp::Eq, BranchOp::Ne, BranchOp::Lt, BranchOp::Ge, BranchOp::Ltu, BranchOp::Geu];
const LOAD: [LoadOp; 5] = [LoadOp::Lb, LoadOp::Lh, LoadOp::Lw, LoadOp::Lbu, LoadOp::Lhu];
const STORE: [StoreOp; 3] = [StoreOp::Sb, StoreOp::Sh, StoreOp::Sw];
const CSR: [CsrOp; 6] = [CsrOp::Rw, CsrOp::Rs, CsrOp::Rc, CsrOp::Rwi, CsrOp::Rsi, CsrOp::Rci];
const FP_ALU: [FpAluOp; 7] = [
    FpAluOp::Add,
    FpAluOp::Sub,
    FpAluOp::Mul,
    FpAluOp::Div,
    FpAluOp::Sqrt,
    FpAluOp::Min,
    FpAluOp::Max,
];
const FMA: [FmaOp; 4] = [FmaOp::Madd, FmaOp::Msub, FmaOp::Nmsub, FmaOp::Nmadd];
const SGNJ: [SgnjOp; 3] = [SgnjOp::Sgnj, SgnjOp::Sgnjn, SgnjOp::Sgnjx];
const FP_CMP: [FpCmpOp; 3] = [FpCmpOp::Eq, FpCmpOp::Lt, FpCmpOp::Le];
const FMT: [FpFmt; 2] = [FpFmt::S, FpFmt::D];
const CVT: [IntCvt; 2] = [IntCvt::W, IntCvt::Wu];
const DMA: [DmaOp; 6] = [DmaOp::Src, DmaOp::Dst, DmaOp::Str, DmaOp::Rep, DmaOp::CpyI, DmaOp::StatI];

/// One representative instance of every `Inst` variant × sub-operation ×
/// format combination (fixed registers/immediates; the operand fields are
/// rendered by the shared register/integer formatters).
fn every_instruction() -> Vec<Inst> {
    let (rd, rs1, rs2) = (IntReg::A0, IntReg::A1, IntReg::A2);
    let (fd, fa, fb, fc) = (FpReg::FA0, FpReg::FA1, FpReg::FA2, FpReg::FA3);
    let mut all = vec![
        Inst::Lui { rd, imm: 0x12345 << 12 },
        Inst::Auipc { rd, imm: 0x1 << 12 },
        Inst::Jal { rd, offset: -8 },
        Inst::Jalr { rd, rs1, offset: 12 },
        Inst::Fence,
        Inst::Ecall,
        Inst::Ebreak,
        Inst::Flw { rd: fd, rs1, offset: 4 },
        Inst::Fsw { rs2: fa, rs1, offset: -4 },
        Inst::Fld { rd: fd, rs1, offset: 8 },
        Inst::Fsd { rs2: fa, rs1, offset: -8 },
        Inst::FpCvtF2F { to: FpFmt::S, rd: fd, rs1: fa },
        Inst::FpCvtF2F { to: FpFmt::D, rd: fd, rs1: fa },
        Inst::FpMvF2X { rd, rs1: fa },
        Inst::FpMvX2F { rd: fd, rs1 },
        Inst::FrepO { rep: rs1, max_inst: 4, stagger_max: 3, stagger_mask: 0b1001 },
        Inst::FrepI { rep: rs1, max_inst: 2, stagger_max: 0, stagger_mask: 0 },
        Inst::Scfgwi { value: rs1, addr: 0x42 },
        Inst::Scfgri { rd, addr: 0x42 },
        Inst::CopiftClass { rd: fd, rs1: fa },
    ];
    all.extend(BRANCH.iter().map(|&op| Inst::Branch { op, rs1, rs2, offset: 16 }));
    all.extend(LOAD.iter().map(|&op| Inst::Load { op, rd, rs1, offset: -16 }));
    all.extend(STORE.iter().map(|&op| Inst::Store { op, rs2, rs1, offset: 20 }));
    all.extend(ALU_IMM.iter().map(|&op| Inst::OpImm { op, rd, rs1, imm: 5 }));
    all.extend(ALU.iter().map(|&op| Inst::OpReg { op, rd, rs1, rs2 }));
    all.extend(CSR.iter().map(|&op| Inst::Csr { op, rd, csr: 0x7C0, src: 3 }));
    for fmt in FMT {
        all.extend(FP_ALU.iter().map(|&op| Inst::FpOp { op, fmt, rd: fd, rs1: fa, rs2: fb }));
        all.extend(FMA.iter().map(|&op| Inst::FpFma {
            op,
            fmt,
            rd: fd,
            rs1: fa,
            rs2: fb,
            rs3: fc,
        }));
        all.extend(SGNJ.iter().map(|&op| Inst::FpSgnj { op, fmt, rd: fd, rs1: fa, rs2: fb }));
        all.extend(FP_CMP.iter().map(|&op| Inst::FpCmp { op, fmt, rd, rs1: fa, rs2: fb }));
        all.push(Inst::FpClass { fmt, rd, rs1: fa });
        for to in CVT {
            all.push(Inst::FpCvtF2I { to, fmt, rd, rs1: fa });
            all.push(Inst::FpCvtI2F { from: to, fmt, rd: fd, rs1 });
        }
    }
    all.extend(DMA.iter().map(|&op| Inst::Dma { op, rd, rs1, rs2, imm5: 1 }));
    all.extend(FP_CMP.iter().map(|&op| Inst::CopiftCmp { op, rd: fd, rs1: fa, rs2: fb }));
    for to in CVT {
        all.push(Inst::CopiftCvtF2I { to, rd: fd, rs1: fa });
        all.push(Inst::CopiftCvtI2F { from: to, rd: fd, rs1: fa });
    }
    all
}

#[test]
fn every_variant_renders_non_empty_stable_text() {
    let all = every_instruction();
    assert!(all.len() > 100, "the inventory covers the whole ISA surface");
    for inst in &all {
        let first = inst.to_string();
        assert!(!first.trim().is_empty(), "{inst:?} renders empty");
        assert!(
            first.is_ascii() && !first.contains('\n'),
            "{inst:?} renders non-printable text: {first:?}"
        );
        let mnemonic = first.split_whitespace().next().unwrap();
        assert!(
            mnemonic.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.'),
            "{inst:?}: mnemonic `{mnemonic}` is not a lowercase dotted word"
        );
        // Stable: rendering is a pure function of the instruction.
        assert_eq!(first, inst.to_string(), "{inst:?} renders unstably");
    }
    // Mnemonic collisions across *different* op enums would make traces
    // ambiguous; identical renderings must come from identical instructions.
    let mut seen = std::collections::HashMap::new();
    for inst in &all {
        if let Some(prev) = seen.insert(inst.to_string(), *inst) {
            assert_eq!(prev, *inst, "distinct instructions render identically");
        }
    }
}

#[test]
fn golden_spot_checks_pin_the_format() {
    let checks: [(Inst, &str); 8] = [
        (Inst::Lui { rd: IntReg::A0, imm: 0x12345 << 12 }, "lui a0, 0x12345"),
        (
            Inst::Store { op: StoreOp::Sw, rs2: IntReg::A2, rs1: IntReg::A1, offset: 20 },
            "sw a2, 20(a1)",
        ),
        (Inst::Csr { op: CsrOp::Rsi, rd: IntReg::A0, csr: 0x7C0, src: 3 }, "csrrsi a0, 0x7c0, 3"),
        (
            Inst::FrepO { rep: IntReg::A1, max_inst: 4, stagger_max: 3, stagger_mask: 0b1001 },
            "frep.o a1, 4, 3, 0x9",
        ),
        (
            Inst::Dma {
                op: DmaOp::CpyI,
                rd: IntReg::A0,
                rs1: IntReg::A1,
                rs2: IntReg::A2,
                imm5: 1,
            },
            "dmcpyi a0, a1, 1",
        ),
        (
            Inst::CopiftCmp { op: FpCmpOp::Le, rd: FpReg::FA0, rs1: FpReg::FA1, rs2: FpReg::FA2 },
            "copift.fle.d fa0, fa1, fa2",
        ),
        (
            Inst::CopiftCvtF2I { to: IntCvt::Wu, rd: FpReg::FA0, rs1: FpReg::FA1 },
            "copift.fcvt.wu.d fa0, fa1",
        ),
        (Inst::CopiftClass { rd: FpReg::FA0, rs1: FpReg::FA1 }, "copift.fclass.d fa0, fa1"),
    ];
    for (inst, want) in checks {
        assert_eq!(inst.to_string(), want);
    }
}
