//! Quick validation pass: every kernel, both variants, one engine batch.

use snitch_engine::{job, Engine};

fn main() {
    let records = Engine::default().run(&job::smoke());
    let mut failed = false;
    for r in &records {
        if r.ok {
            println!(
                "{:<18} {:<7} ok: cycles {:>8} ipc {:.3} power {:.1} mW",
                r.job.kernel.name(),
                r.job.variant.name(),
                r.cycles,
                r.ipc,
                r.power_mw
            );
        } else {
            failed = true;
            println!(
                "{:<18} {:<7} FAILED: {}",
                r.job.kernel.name(),
                r.job.variant.name(),
                r.error.as_deref().unwrap_or("unknown error")
            );
        }
    }
    assert!(!failed, "smoke batch had failures");
}
