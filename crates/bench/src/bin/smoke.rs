use snitch_kernels::registry::{Kernel, Variant};
fn main() {
    for k in Kernel::all() {
        for v in [Variant::Baseline, Variant::Copift] {
            let (n, block) = match k {
                Kernel::Expf | Kernel::Logf => (512, 64),
                _ => (512, 128),
            };
            match k.run(v, n, block) {
                Ok(r) => println!("{:<18} {:<7} ok: cycles {:>8} ipc {:.3} power {:.1} mW",
                    k.name(), v.name(), r.total_cycles, r.stats.ipc(), r.power_mw),
                Err(e) => println!("{:<18} {:<7} FAILED: {e}", k.name(), v.name()),
            }
        }
    }
}
