//! Runs every experiment and writes `EXPERIMENTS.md` (paper vs measured for
//! every table and figure, plus the extended suite).
//!
//! All measurements run through `snitch-engine` batches (116 simulations
//! total), fanned across the host cores with one compiled program per
//! distinct spec.

use std::fmt::Write as _;

use snitch_bench::{
    extended_tables, fig3_grid, geomean, overlap_rows, overlap_strip, overlap_tables,
    scaling_grid_rows, scaling_grid_tables, scaling_rows, scaling_tables, Fig2Row, FIG3_BLOCKS,
    FIG3_SIZES, SCALING_CLUSTERS, SCALING_CORES,
};
use snitch_engine::Engine;
use snitch_kernels::registry::Variant;
use snitch_kernels::Kernel;

fn main() {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# EXPERIMENTS — paper vs measured\n\n\
         Reproduction of *Dual-Issue Execution of Mixed Integer and Floating-Point\n\
         Workloads on Energy-Efficient In-Order RISC-V Cores* (DAC 2025) on the\n\
         `snitch-sim` cycle-accurate model with the `snitch-energy` power model.\n\
         Regenerate with `cargo run --release -p snitch-bench --bin experiments`.\n\
         Absolute numbers depend on the simulator/energy calibration documented in\n\
         DESIGN.md §9; the claims under test are the *shapes*: who wins, by what\n\
         factor, and where the trends bend.\n"
    );

    // ---- Figure 2 ----
    let engine = Engine::default();
    let rows: Vec<Fig2Row> = Fig2Row::measure_all(&engine);
    let paper_ipc =
        [(0.96, 1.24), (0.96, 1.36), (0.86, 1.50), (0.89, 1.75), (0.92, 1.48), (0.92, 1.63)];
    let paper_power =
        [(37.9, 39.0), (37.4, 38.4), (41.5, 43.6), (38.7, 40.1), (42.1, 45.1), (41.8, 46.2)];
    let paper_speedup = [1.15, 1.26, 1.32, 1.58, 1.62, 2.05];
    let paper_energy = [1.12, 1.22, 1.17, 1.34, 1.61, 1.93];

    let _ = writeln!(out, "## Figure 2a — steady-state IPC\n");
    let _ =
        writeln!(out, "| kernel | base (paper) | base (ours) | COPIFT (paper) | COPIFT (ours) |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for (r, p) in rows.iter().zip(paper_ipc) {
        let _ = writeln!(
            out,
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} |",
            r.kernel.name(),
            p.0,
            r.base.ipc,
            p.1,
            r.copift.ipc
        );
    }
    let gains: Vec<f64> = rows.iter().map(|r| r.copift.ipc / r.base.ipc).collect();
    let peak = rows.iter().map(|r| r.copift.ipc).fold(0.0f64, f64::max);
    let _ = writeln!(
        out,
        "\nGeomean IPC gain **{:.2}×** (paper 1.62×); peak IPC **{peak:.2}** (paper 1.75).\n",
        geomean(&gains)
    );

    let _ = writeln!(out, "## Figure 2b — average power (mW)\n");
    let _ =
        writeln!(out, "| kernel | base (paper) | base (ours) | COPIFT (paper) | COPIFT (ours) |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for (r, p) in rows.iter().zip(paper_power) {
        let _ = writeln!(
            out,
            "| {} | {:.1} | {:.1} | {:.1} | {:.1} |",
            r.kernel.name(),
            p.0,
            r.base.power_mw,
            p.1,
            r.copift.power_mw
        );
    }
    let ratios: Vec<f64> = rows.iter().map(Fig2Row::power_ratio).collect();
    let _ = writeln!(out, "\nGeomean power ratio **{:.3}×** (paper 1.07×).\n", geomean(&ratios));

    let _ = writeln!(out, "## Figure 2c — speedup and energy improvement\n");
    let _ = writeln!(
        out,
        "| kernel | speedup (paper) | speedup (ours) | energy imp. (paper) | energy imp. (ours) |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    for ((r, ps), pe) in rows.iter().zip(paper_speedup).zip(paper_energy) {
        let _ = writeln!(
            out,
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} |",
            r.kernel.name(),
            ps,
            r.speedup(),
            pe,
            r.energy_improvement()
        );
    }
    let sp: Vec<f64> = rows.iter().map(Fig2Row::speedup).collect();
    let ei: Vec<f64> = rows.iter().map(Fig2Row::energy_improvement).collect();
    let _ = writeln!(
        out,
        "\nGeomean speedup **{:.2}×** (paper 1.47×); geomean energy improvement \
         **{:.2}×** (paper 1.37×); peak speedup **{:.2}×** (paper 2.05× on `exp`).\n",
        geomean(&sp),
        geomean(&ei),
        sp.iter().fold(0.0f64, |a, &b| a.max(b))
    );

    // ---- Figure 3 ----
    let _ = writeln!(out, "## Figure 3 — poly_lcg COPIFT IPC over (problem size × block size)\n");
    let mut header = String::from("| n \\ B |");
    for b in FIG3_BLOCKS {
        let _ = write!(header, " {b} |");
    }
    let _ = writeln!(out, "{header} peak |");
    let _ = writeln!(out, "|{}", "---|".repeat(FIG3_BLOCKS.len() + 2));
    let grid = fig3_grid(&engine);
    for (i, &n) in FIG3_SIZES.iter().enumerate() {
        let mut line = format!("| {n} |");
        let mut best = (0usize, 0.0f64);
        for (j, _) in FIG3_BLOCKS.iter().enumerate() {
            let v = grid[i][j];
            if v > best.1 {
                best = (j, v);
            }
            let _ = write!(line, " {v:.3} |");
        }
        let _ = writeln!(out, "{line} B={} |", FIG3_BLOCKS[best.0]);
    }
    let _ = writeln!(
        out,
        "\nTrends to compare with the paper: IPC increases with problem size as\n\
         prologue/epilogue overheads amortize; small blocks converge at smaller n;\n\
         the per-size peak block grows with n; large-n IPC approaches the\n\
         steady-state Figure 2a value.\n"
    );

    // ---- Extended suite ----
    let _ = writeln!(out, "## Extended suite — beyond the paper\n");
    let _ = writeln!(
        out,
        "Steady-state measurements for the auto-compiled catalog kernels\n\
         (`copift::codegen` applied to plain loop bodies; no paper reference\n\
         exists). Regenerate alone with\n\
         `cargo run --release -p snitch-bench --bin extended`, or sweep with\n\
         `cargo run --release -p snitch-engine --bin sweep -- extended`.\n"
    );
    let ext_rows = Fig2Row::measure_suite(&engine, &Kernel::extended());
    out.push_str(&extended_tables(&ext_rows));
    let ext_sp: Vec<f64> = ext_rows.iter().map(Fig2Row::speedup).collect();
    let ext_ei: Vec<f64> = ext_rows.iter().map(Fig2Row::energy_improvement).collect();
    let _ = writeln!(
        out,
        "\nGeomean extended speedup **{:.2}×**, energy improvement **{:.2}×**.\n\
         `softmax` is FP-only: its COPIFT gain comes from SSR/FREP issue\n\
         elision alone, bounding the speedup well below the mixed kernels'\n\
         — and with no integer thread to dual-issue, its COPIFT power does\n\
         not rise above the baseline's. Its two-way partial-sum reduction\n\
         keeps the cross-iteration FP dependency it exists to stress on the\n\
         critical path in both variants.\n",
        geomean(&ext_sp),
        geomean(&ext_ei),
    );

    // ---- Cluster scaling ----
    let (sn, sblock) = Kernel::PiLcgPar.operating_point();
    let _ = writeln!(out, "## Cluster scaling — data-parallel kernels over compute cores\n");
    let _ = writeln!(
        out,
        "Full-run cycles of the data-parallel Monte Carlo kernels (trials split\n\
         across harts with mid-stream seed tables, hardware barrier, TCDM tree\n\
         reduction) at n = {sn}, block = {sblock}, over {SCALING_CORES:?} compute\n\
         cores sharing the banked TCDM. Every cell validates **bit-exactly**\n\
         against the single-core golden model (DESIGN.md §11). Regenerate alone\n\
         with `cargo run --release -p snitch-bench --bin scaling`, or sweep with\n\
         `cargo run --release -p snitch-engine --bin sweep -- scaling`.\n"
    );
    let srows = scaling_rows(&engine);
    out.push_str(&scaling_tables(&srows));
    let last = SCALING_CORES.len() - 1;
    let top = SCALING_CORES[last];
    let s8: Vec<f64> = srows.iter().map(|r| r.speedup(last)).collect();
    let _ = writeln!(
        out,
        "\nGeomean {top}-core speedup **{:.2}×** (ideal {top}×). The gap to ideal is the\n\
         fixed prologue/epilogue (seed loads, barrier, reduction) plus TCDM bank\n\
         conflicts, which are zero on one core and grow with the hart count while\n\
         staying a small fraction of all accesses at 32 banks.\n",
        geomean(&s8),
    );

    // ---- Cores × clusters scaling ----
    let (gn, gblock) = Kernel::GemmTiled.operating_point();
    let _ = writeln!(out, "## Cores × clusters scaling — tiled GEMM over the system grid\n");
    let _ = writeln!(
        out,
        "Full-run cycles of the tiled f64 GEMM (operands staged from the shared\n\
         L2 into each cluster's TCDM over the inter-cluster DMA, block-cyclic\n\
         row ownership, per-cluster writeback of disjoint output rows) at\n\
         n = {gn}, block = {gblock}, over {SCALING_CORES:?} compute cores ×\n\
         {SCALING_CLUSTERS:?} clusters. Every cell validates **bit-exactly**\n\
         against the single-cluster golden model (DESIGN.md §18); the DMA hop\n\
         cycles column counts the modeled L2/interconnect setup latency the\n\
         tiles paid in transit. Regenerate alone with\n\
         `cargo run --release -p snitch-bench --bin scaling`, or sweep with\n\
         `cargo run --release -p snitch-engine --bin sweep -- scaling-grid`.\n"
    );
    let grows = scaling_grid_rows(&engine);
    out.push_str(&scaling_grid_tables(&grows));
    let _ = writeln!(
        out,
        "\nWithin a fixed cluster count, cores scale the compute loop; adding\n\
         clusters shrinks each cluster's row slice but repays a fixed staging\n\
         cost (the shared B tile is replicated into every TCDM), so cluster\n\
         scaling pays off once the per-cluster compute dominates the DMA hops\n\
         — the COPIFT rows, whose compute is already compressed by the\n\
         SSR/FREP stream path, feel the staging floor first.\n"
    );

    // ---- Overlap profile ----
    let _ = writeln!(out, "## Overlap profile — per-cycle dual-issue occupancy\n");
    let _ = writeln!(
        out,
        "The headline mechanism, observed directly: `snitch-trace` records every\n\
         issue slot per cycle and decomposes the run into *overlap* (integer core\n\
         and FREP sequencer issuing in the same cycle — the pseudo-dual-issue the\n\
         IPC > 1 numbers come from), *core-only*, *frep-only* and *idle* cycles.\n\
         Baselines never touch the sequencer, so their lanes are serialized by\n\
         construction; every COPIFT variant shows substantial concurrent lane\n\
         occupancy. \"Steady IPC\" is the automatic steady-state window (the longest\n\
         near-peak-throughput plateau, trimming prologue, per-block fences and\n\
         epilogue). Six paper kernels at their smoke points, hart 0; regenerate\n\
         with `cargo run --release -p snitch-bench --bin overlap`.\n"
    );
    let orows = overlap_rows(&engine);
    out.push_str(&overlap_tables(&orows));
    let _ = writeln!(
        out,
        "\nThe LCG kernels dual-issue hardest in their steady state (sequencer lane\n\
         saturated, steady IPC ≈ 1.9) because COPIFT moves the whole FP stream off\n\
         the integer thread, whose remaining stalls are the mul write-back-port\n\
         hazard; full-run IPC is diluted by the per-block fences visible as the\n\
         `fence` bars in the stall attribution. `pi_lcg/copift`'s steady state,\n\
         as an ASCII strip of the Perfetto timeline:\n"
    );
    if let Some(row) =
        orows.iter().find(|r| r.kernel == Kernel::PiLcg && r.variant == Variant::Copift)
    {
        out.push_str(&overlap_strip(row, 64));
    }
    let _ = writeln!(
        out,
        "\nTrace-derived stall attribution and IPC are asserted **equal to the\n\
         `Stats` counters, counter for counter**, for every paper kernel\n\
         (`crates/engine/tests/trace.rs`), so the timeline and the aggregate\n\
         tables can never tell different stories.\n"
    );

    // ---- Known deviations ----
    let _ = writeln!(
        out,
        "## Substitutions and deviations\n\n\
         * The RTL/QuestaSim platform is replaced by a cycle-accurate software\n\
           model and PrimeTime power by a calibrated event-energy model\n\
           (DESIGN.md §1, §9). Absolute mW track the paper's 37–46 mW window by\n\
           construction of two anchor points; per-kernel values are measured.\n\
         * The FREP sequencer ring holds 128 entries (Snitch's is smaller); the\n\
           paper's COPIFT branch also requires bodies of up to 80 instructions.\n\
           `ablation_seq_depth` quantifies the sensitivity.\n\
         * `logf` is TCDM-resident (no DMA streaming), so its baseline power is\n\
           slightly lower than the paper's 42.1 mW.\n\
         * Instruction counts differ by a few ops/element where the paper's\n\
           exact code is not published (e.g. our MC integer thread spills with\n\
           two `sw` per draw); Table I reports measured mixes side by side.\n"
    );

    std::fs::write("EXPERIMENTS.md", &out).expect("write EXPERIMENTS.md");
    println!("{out}");
    println!("written to EXPERIMENTS.md");
}
