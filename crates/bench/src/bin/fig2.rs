//! Regenerates **Figure 2**: steady-state IPC (a), power (b), and
//! speedup / energy improvement (c) for all six kernels, baseline vs COPIFT.
//!
//! The 24 simulations run as one `snitch-engine` batch across all host
//! cores; results are identical to the serial drivers.

use snitch_bench::{geomean, Fig2Row};
use snitch_engine::Engine;

fn main() {
    let panel = std::env::args()
        .skip(1)
        .find(|a| a != "all" && !a.starts_with("--"))
        .unwrap_or_else(|| "all".to_string());
    let rows: Vec<Fig2Row> = Fig2Row::measure_all(&Engine::default());

    if panel == "ipc" || panel == "all" {
        println!("Figure 2a — steady-state IPC (paper: base 0.86–0.96, COPIFT 1.24–1.75)");
        println!(
            "{:<18} {:>8} {:>8} {:>7} {:>10}",
            "kernel", "base", "copift", "gain", "I' (exp.)"
        );
        for r in &rows {
            println!(
                "{:<18} {:>8.2} {:>8.2} {:>6.1}x {:>10.2}",
                r.kernel.name(),
                r.base.ipc,
                r.copift.ipc,
                r.copift.ipc / r.base.ipc,
                r.i_prime()
            );
        }
        let gains: Vec<f64> = rows.iter().map(|r| r.copift.ipc / r.base.ipc).collect();
        println!("geomean IPC gain: {:.2}x (paper 1.62x)", geomean(&gains));
        let peak = rows.iter().map(|r| r.copift.ipc).fold(0.0f64, f64::max);
        println!("peak IPC: {peak:.2} (paper 1.75)\n");
    }
    if panel == "power" || panel == "all" {
        println!("Figure 2b — average power [mW] (paper: 37.4–46.2 mW, geomean ratio 1.07x)");
        println!("{:<18} {:>8} {:>8} {:>7}", "kernel", "base", "copift", "ratio");
        for r in &rows {
            println!(
                "{:<18} {:>8.1} {:>8.1} {:>6.2}x",
                r.kernel.name(),
                r.base.power_mw,
                r.copift.power_mw,
                r.power_ratio()
            );
        }
        let ratios: Vec<f64> = rows.iter().map(Fig2Row::power_ratio).collect();
        println!("geomean power ratio: {:.3}x (paper 1.07x)\n", geomean(&ratios));
    }
    if panel == "speedup" || panel == "all" {
        println!("Figure 2c — speedup and energy improvement (paper: 1.47x / 1.37x geomean)");
        println!("{:<18} {:>8} {:>10} {:>10}", "kernel", "speedup", "energy-imp", "S' (exp.)");
        for r in &rows {
            println!(
                "{:<18} {:>7.2}x {:>9.2}x {:>10.2}",
                r.kernel.name(),
                r.speedup(),
                r.energy_improvement(),
                r.s_prime()
            );
        }
        let sp: Vec<f64> = rows.iter().map(Fig2Row::speedup).collect();
        let ei: Vec<f64> = rows.iter().map(Fig2Row::energy_improvement).collect();
        println!(
            "geomean speedup: {:.2}x (paper 1.47x); geomean energy improvement: {:.2}x (paper 1.37x)",
            geomean(&sp),
            geomean(&ei)
        );
        let peak = sp.iter().fold(0.0f64, |a, &b| a.max(b));
        println!("peak speedup: {peak:.2}x (paper 2.05x on exp)");
    }
}
