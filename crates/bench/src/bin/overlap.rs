//! The overlap-profile driver: traces the six paper kernels in both
//! variants and prints the per-cycle dual-issue occupancy decomposition
//! that `EXPERIMENTS.md`'s "Overlap profile" section carries — the
//! trace-level view behind the paper's pseudo-dual-issue claim (the
//! `experiments` generator emits the same table through the shared
//! [`snitch_bench::overlap_tables`] renderer, so the committed file and
//! this driver can never drift apart). Every job validates bit-exactly
//! through the engine before its trace counts.

use snitch_bench::{overlap_rows, overlap_strip, overlap_tables};
use snitch_engine::Engine;
use snitch_kernels::registry::{Kernel, Variant};

fn main() {
    let rows = overlap_rows(&Engine::default());
    print!("{}", overlap_tables(&rows));
    // A Perfetto-screenshot-equivalent strip of pi_lcg/copift's steady
    // state (the dual-issue overlap picture in ASCII).
    if let Some(row) =
        rows.iter().find(|r| r.kernel == Kernel::PiLcg && r.variant == Variant::Copift)
    {
        println!();
        print!("{}", overlap_strip(row, 64));
    }
}
