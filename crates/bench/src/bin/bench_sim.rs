//! `bench_sim` — host-side simulator-throughput benchmark and tracing
//! overhead guard.
//!
//! Runs the fixed smoke batch (every built-in kernel, both variants, small
//! sizes) on a single worker and reports *simulated instructions per
//! host-second* — the one number that tracks the simulator's hot-path
//! performance across PRs. Writes `BENCH_sim.json` into the current
//! directory; CI runs it as a smoke (no thresholds on the absolute number),
//! so the trajectory is recorded without gating merges on a noisy metric.
//!
//! It then asserts the **tracing overhead guard**: re-running the batch
//! with the trace hook compiled in and *attached but disabled* (a paused
//! `Tracer`, the worst case for the hook's branches) must stay within 2%
//! of the untraced path. The hook is required to be a no-op branch — no
//! event construction, no allocation — and this guard is where that
//! requirement is enforced.

use std::time::Instant;

use snitch_asm::program::Program;
use snitch_engine::{job, Engine};
use snitch_sim::cluster::Cluster;
use snitch_sim::config::ClusterConfig;
use snitch_trace::Tracer;

/// Timed passes per measurement (the guard compares minima over repeats).
/// Sized so one measurement spans a few hundred milliseconds: a 2% ratio of
/// a too-short window would gate CI on scheduler noise rather than on the
/// hook's cost.
const GUARD_PASSES: usize = 8;
/// Interleaved measurement repeats per path.
const GUARD_REPEATS: usize = 5;
/// Allowed disabled-hook slowdown relative to the untraced path.
const GUARD_TOLERANCE: f64 = 1.02;

/// One timed pass over the pre-built batch: reset, (optionally) attach a
/// paused tracer, load, run. Returns (wall seconds, total simulated cycles).
fn guard_pass(programs: &[Program], paused_tracer: bool) -> (f64, u64) {
    let mut cluster = Cluster::new(ClusterConfig::default());
    let mut cycles = 0u64;
    let t0 = Instant::now();
    for _ in 0..GUARD_PASSES {
        for program in programs {
            cluster.reset();
            if paused_tracer {
                cluster.attach_tracer(Tracer::paused());
            }
            cluster.load_program(program);
            let stats = cluster.run().expect("smoke program completes");
            cycles += std::hint::black_box(stats.cycles);
        }
    }
    (t0.elapsed().as_secs_f64(), cycles)
}

/// Re-measurement attempts before the guard fails: wall-clock noise on a
/// shared/oversubscribed host can exceed the tolerance in either direction,
/// while a real hook regression (an allocation, event construction on the
/// cold branch) is systematic and fails every attempt.
const GUARD_ATTEMPTS: usize = 3;

/// One guard attempt: minimum wall time per path over [`GUARD_REPEATS`]
/// interleaved measurements, alternating which path runs first so drift
/// (frequency ramp, cache warm-up) hits both equally. Returns
/// `(untraced, disabled)` seconds.
fn guard_attempt(programs: &[Program]) -> (f64, f64) {
    let mut untraced = f64::INFINITY;
    let mut disabled = f64::INFINITY;
    for rep in 0..GUARD_REPEATS {
        let order = if rep % 2 == 0 { [false, true] } else { [true, false] };
        for paused in order {
            let (t, _) = guard_pass(programs, paused);
            if paused {
                disabled = disabled.min(t);
            } else {
                untraced = untraced.min(t);
            }
        }
    }
    (untraced, disabled)
}

/// The tracing overhead guard: wall time with a paused tracer attached must
/// stay within [`GUARD_TOLERANCE`] of the untraced path on at least one of
/// [`GUARD_ATTEMPTS`] measurement rounds.
fn tracing_overhead_guard(programs: &[Program]) {
    // Simulation equality is exact and checked once, outside the timing.
    assert_eq!(
        guard_pass(programs, false).1,
        guard_pass(programs, true).1,
        "a paused tracer must not perturb the simulation by a single cycle"
    );
    let mut last = (0.0, 0.0);
    for attempt in 1..=GUARD_ATTEMPTS {
        let (untraced, disabled) = guard_attempt(programs);
        last = (untraced, disabled);
        let ratio = disabled / untraced;
        if ratio <= GUARD_TOLERANCE {
            eprintln!(
                "bench_sim: tracing overhead guard ok — disabled hook {:+.2}% vs untraced \
                 ({disabled:.4}s vs {untraced:.4}s over {GUARD_PASSES} passes, \
                 min of {GUARD_REPEATS}, attempt {attempt}/{GUARD_ATTEMPTS})",
                (ratio - 1.0) * 100.0,
            );
            return;
        }
        eprintln!(
            "bench_sim: overhead guard attempt {attempt}/{GUARD_ATTEMPTS}: disabled hook \
             {:+.2}% vs untraced — re-measuring",
            (ratio - 1.0) * 100.0,
        );
    }
    panic!(
        "tracing-disabled path is consistently more than {:.0}% slower than untraced \
         ({:.4}s vs {:.4}s on the final attempt): the trace hook must stay a no-op \
         branch with no allocation",
        (GUARD_TOLERANCE - 1.0) * 100.0,
        last.1,
        last.0,
    );
}

fn main() {
    // One worker: a per-core throughput number, independent of host core
    // count. The batch is fixed (built-in catalog only, deterministic
    // order), so runs are comparable across commits.
    let jobs = job::smoke();
    let engine = Engine::new(1);

    // Warm-up pass compiles every program into the cache so the measured
    // pass times simulation, not assembly.
    let _ = engine.run(&jobs);

    let t0 = Instant::now();
    let records = engine.run(&jobs);
    let wall = t0.elapsed().as_secs_f64();

    let failed = records.iter().filter(|r| !r.ok).count();
    assert_eq!(failed, 0, "smoke batch must validate before its timing means anything");
    let instructions: u64 = records.iter().map(|r| r.instructions).sum();
    let cycles: u64 = records.iter().map(|r| r.cycles).sum();
    let ips = instructions as f64 / wall;

    let json = format!(
        "{{\"benchmark\":\"sim\",\"workload\":\"smoke\",\"jobs\":{},\"workers\":1,\
         \"simulated_instructions\":{instructions},\"simulated_cycles\":{cycles},\
         \"wall_seconds\":{wall:.6},\"instructions_per_second\":{ips:.0},\
         \"cycles_per_second\":{:.0}}}\n",
        records.len(),
        cycles as f64 / wall,
    );
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    print!("{json}");
    eprintln!(
        "bench_sim: {} jobs, {instructions} simulated instructions in {wall:.3}s \
         ({:.2} M inst/s)",
        records.len(),
        ips / 1e6,
    );

    // The overhead guard runs the same smoke programs through a bare
    // cluster loop (no engine, no validation) so the comparison isolates
    // the simulator hot path the hook sits on.
    let programs: Vec<Program> =
        jobs.iter().map(|j| j.kernel.build_for(j.variant, j.n, j.block, j.config.cores)).collect();
    tracing_overhead_guard(&programs);
}
