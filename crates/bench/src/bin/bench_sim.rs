//! `bench_sim` — host-side simulator-throughput benchmark, throughput-
//! regression guard and tracing overhead guard.
//!
//! Runs the fixed smoke batch (every built-in kernel, both variants, small
//! sizes) on worker pools of 1, 4 and 8 and reports *simulated cycles per
//! host-second* per pool — the numbers that track the simulator's hot-path
//! performance across PRs. Writes one JSON line per pool size to
//! `BENCH_sim.json` in the current directory.
//!
//! Three guards gate the CI smoke step:
//!
//! * **Throughput-regression guard**: the single-worker cycles/s must not
//!   drop more than 20% below the committed `BENCH_sim.json` baseline (the
//!   workers-1 line of the file in the current directory, read before it is
//!   overwritten). Wall-clock noise is damped by re-measuring; a real
//!   hot-loop regression is systematic and fails every attempt.
//! * **Tracing overhead guard**: re-running the batch with the trace hook
//!   compiled in and *attached but disabled* (a paused `Tracer`, the worst
//!   case for the hook's branches) must stay within 2% of the untraced
//!   path. The hook is required to be a no-op branch — no event
//!   construction, no allocation — and this guard is where that
//!   requirement is enforced.
//! * **Profiling overhead guard**: the same contract for the cycle-profiler
//!   hook (a paused `Profiler` attached): within 2% of the bare path and
//!   cycle-identical.

use std::fmt::Write as _;
use std::time::Instant;

use snitch_asm::program::Program;
use snitch_engine::{job, Engine};
use snitch_profile::Profiler;
use snitch_sim::cluster::Cluster;
use snitch_sim::config::ClusterConfig;
use snitch_trace::Tracer;

/// The observation hook a guard pass attaches (always paused — the
/// worst case for the hook's branches: present, checked, never recording).
#[derive(Clone, Copy, PartialEq)]
enum Hook {
    None,
    Tracer,
    Profiler,
}

/// Timed passes per measurement (the guard compares minima over repeats).
/// Sized so one measurement spans a few hundred milliseconds: a 2% ratio of
/// a too-short window would gate CI on scheduler noise rather than on the
/// hook's cost.
const GUARD_PASSES: usize = 8;
/// Interleaved measurement repeats per path.
const GUARD_REPEATS: usize = 5;
/// Allowed disabled-hook slowdown relative to the untraced path.
const GUARD_TOLERANCE: f64 = 1.02;

/// One timed pass over the pre-built batch: reset, (optionally) attach a
/// paused hook, load, run. Returns (wall seconds, total simulated cycles).
fn guard_pass(programs: &[Program], hook: Hook) -> (f64, u64) {
    let mut cluster = Cluster::new(ClusterConfig::default());
    let mut cycles = 0u64;
    let t0 = Instant::now();
    for _ in 0..GUARD_PASSES {
        for program in programs {
            cluster.reset();
            match hook {
                Hook::None => {}
                Hook::Tracer => cluster.attach_tracer(Tracer::paused()),
                Hook::Profiler => cluster.attach_profiler(Profiler::paused()),
            }
            cluster.load_program(program);
            let stats = cluster.run().expect("smoke program completes");
            cycles += std::hint::black_box(stats.cycles);
        }
    }
    (t0.elapsed().as_secs_f64(), cycles)
}

/// Re-measurement attempts before the guard fails: wall-clock noise on a
/// shared/oversubscribed host can exceed the tolerance in either direction,
/// while a real hook regression (an allocation, event construction on the
/// cold branch) is systematic and fails every attempt.
const GUARD_ATTEMPTS: usize = 3;

/// One guard attempt: minimum wall time per path over [`GUARD_REPEATS`]
/// interleaved measurements, alternating which path runs first so drift
/// (frequency ramp, cache warm-up) hits both equally. Returns
/// `(bare, disabled)` seconds.
fn guard_attempt(programs: &[Program], hook: Hook) -> (f64, f64) {
    let mut bare = f64::INFINITY;
    let mut disabled = f64::INFINITY;
    for rep in 0..GUARD_REPEATS {
        let order = if rep % 2 == 0 { [Hook::None, hook] } else { [hook, Hook::None] };
        for h in order {
            let (t, _) = guard_pass(programs, h);
            if h == Hook::None {
                bare = bare.min(t);
            } else {
                disabled = disabled.min(t);
            }
        }
    }
    (bare, disabled)
}

/// The hook overhead guard: wall time with a paused hook attached must stay
/// within [`GUARD_TOLERANCE`] of the bare path on at least one of
/// [`GUARD_ATTEMPTS`] measurement rounds. `what` names the hook in the
/// guard's output ("tracing" / "profiling").
fn hook_overhead_guard(programs: &[Program], hook: Hook, what: &str) {
    // Simulation equality is exact and checked once, outside the timing.
    assert_eq!(
        guard_pass(programs, Hook::None).1,
        guard_pass(programs, hook).1,
        "a paused {what} hook must not perturb the simulation by a single cycle"
    );
    let mut last = (0.0, 0.0);
    for attempt in 1..=GUARD_ATTEMPTS {
        let (bare, disabled) = guard_attempt(programs, hook);
        last = (bare, disabled);
        let ratio = disabled / bare;
        if ratio <= GUARD_TOLERANCE {
            eprintln!(
                "bench_sim: {what} overhead guard ok — disabled hook {:+.2}% vs bare \
                 ({disabled:.4}s vs {bare:.4}s over {GUARD_PASSES} passes, \
                 min of {GUARD_REPEATS}, attempt {attempt}/{GUARD_ATTEMPTS})",
                (ratio - 1.0) * 100.0,
            );
            return;
        }
        eprintln!(
            "bench_sim: {what} overhead guard attempt {attempt}/{GUARD_ATTEMPTS}: disabled \
             hook {:+.2}% vs bare — re-measuring",
            (ratio - 1.0) * 100.0,
        );
    }
    panic!(
        "{what}-disabled path is consistently more than {:.0}% slower than the bare path \
         ({:.4}s vs {:.4}s on the final attempt): the {what} hook must stay a no-op \
         branch with no allocation",
        (GUARD_TOLERANCE - 1.0) * 100.0,
        last.1,
        last.0,
    );
}

/// Worker-pool sizes measured and recorded per run. The single-worker entry
/// is the per-core number the regression guard compares across commits; the
/// multi-worker entries track scaling of the engine's pool.
const WORKER_POOLS: [usize; 3] = [1, 4, 8];

/// Allowed single-worker slowdown relative to the committed baseline.
const REGRESSION_TOLERANCE: f64 = 0.80;

/// Re-measurement attempts before the regression guard fails.
const REGRESSION_ATTEMPTS: usize = 3;

/// One measured result line for a worker-pool size.
struct Measurement {
    workers: usize,
    jobs: usize,
    instructions: u64,
    cycles: u64,
    wall: f64,
}

impl Measurement {
    fn cycles_per_second(&self) -> f64 {
        self.cycles as f64 / self.wall
    }

    /// One JSON line. Multi-worker entries carry their throughput relative
    /// to the workers-1 entry of the same run (`scaling_vs_workers1`); the
    /// workers-1 line keeps the exact historical shape, since
    /// [`committed_baseline`] of future checkouts parses it.
    fn json_line(&self, scaling_vs_workers1: Option<f64>) -> String {
        let mut line = format!(
            "{{\"benchmark\":\"sim\",\"workload\":\"smoke\",\"jobs\":{},\"workers\":{},\
             \"simulated_instructions\":{},\"simulated_cycles\":{},\
             \"wall_seconds\":{:.6},\"instructions_per_second\":{:.0},\
             \"cycles_per_second\":{:.0}}}",
            self.jobs,
            self.workers,
            self.instructions,
            self.cycles,
            self.wall,
            self.instructions as f64 / self.wall,
            self.cycles_per_second(),
        );
        if let Some(ratio) = scaling_vs_workers1 {
            line.pop();
            let _ = write!(line, ",\"scaling_vs_workers1\":{ratio:.3}}}");
        }
        line
    }
}

/// Times one engine pass over the warm smoke batch with `workers` workers.
fn measure(engine: &Engine, jobs: &[snitch_engine::JobSpec], workers: usize) -> Measurement {
    let t0 = Instant::now();
    let records = engine.run(jobs);
    let wall = t0.elapsed().as_secs_f64();
    let failed = records.iter().filter(|r| !r.ok).count();
    assert_eq!(failed, 0, "smoke batch must validate before its timing means anything");
    Measurement {
        workers,
        jobs: records.len(),
        instructions: records.iter().map(|r| r.instructions).sum(),
        cycles: records.iter().map(|r| r.cycles).sum(),
        wall,
    }
}

/// Extracts the workers-1 `cycles_per_second` from a committed
/// `BENCH_sim.json` (JSON-lines; older single-line files work too). Returns
/// `None` when the file is absent or unparseable — a fresh checkout must
/// not fail its first benchmark run.
fn committed_baseline(contents: &str) -> Option<f64> {
    contents
        .lines()
        .find(|l| l.contains("\"workers\":1,") || l.contains("\"workers\":1}"))
        .and_then(|l| {
            let tail = l.split("\"cycles_per_second\":").nth(1)?;
            let digits: String =
                tail.chars().take_while(|c| c.is_ascii_digit() || *c == '.').collect();
            digits.parse().ok()
        })
}

fn main() {
    // The batch is fixed (built-in catalog only, deterministic order), so
    // runs are comparable across commits.
    let jobs = job::smoke();
    let baseline =
        std::fs::read_to_string("BENCH_sim.json").ok().as_deref().and_then(committed_baseline);

    // The throughput-regression guard: measure workers=1 over every attempt
    // and keep the minimum wall time (like the overhead guard) — on a noisy
    // host a single timing window over- or under-states systematically-
    // reproducible throughput by tens of percent in either direction, so
    // both the recorded entry and the guard compare minima.
    let engine1 = Engine::new(1);
    let _ = engine1.run(&jobs); // warm-up: compile every program into the cache
    let mut best: Option<Measurement> = None;
    for attempt in 1..=REGRESSION_ATTEMPTS {
        let m = measure(&engine1, &jobs, 1);
        if best.as_ref().is_none_or(|b| m.wall < b.wall) {
            best = Some(m);
        }
        let rate = best.as_ref().expect("just set").cycles_per_second();
        if let Some(base) = baseline {
            if rate < base * REGRESSION_TOLERANCE {
                eprintln!(
                    "bench_sim: regression guard attempt {attempt}/{REGRESSION_ATTEMPTS}: \
                     {:.2} M cycles/s vs committed {:.2} M — re-measuring",
                    rate / 1e6,
                    base / 1e6,
                );
            }
        }
    }
    let best = best.expect("at least one measurement");
    if let Some(base) = baseline {
        let rate = best.cycles_per_second();
        assert!(
            rate >= base * REGRESSION_TOLERANCE,
            "simulator throughput regressed: {:.2} M cycles/s is more than {:.0}% below the \
             committed baseline of {:.2} M cycles/s (BENCH_sim.json)",
            rate / 1e6,
            (1.0 - REGRESSION_TOLERANCE) * 100.0,
            base / 1e6,
        );
        eprintln!(
            "bench_sim: regression guard ok — {:.2} M cycles/s vs committed {:.2} M",
            rate / 1e6,
            base / 1e6,
        );
    } else {
        eprintln!("bench_sim: no committed baseline found; regression guard skipped");
    }

    // Multi-worker entries: same batch, bigger pools, so the perf
    // trajectory records scaling alongside the per-core number.
    let mut lines = vec![best.json_line(None)];
    let reference_cycles = best.cycles;
    for workers in &WORKER_POOLS[1..] {
        let engine = Engine::new(*workers);
        let _ = engine.run(&jobs);
        // Interleave pool and workers-1 measurements and compare minima:
        // host clock drift over the benchmark's lifetime would otherwise
        // masquerade as a pool slowdown (the workers-1 entry is measured
        // first, when the process tends to run fastest).
        let mut m: Option<Measurement> = None;
        let mut base1: Option<Measurement> = None;
        for _ in 0..REGRESSION_ATTEMPTS {
            let pool = measure(&engine, &jobs, *workers);
            if m.as_ref().is_none_or(|best| pool.wall < best.wall) {
                m = Some(pool);
            }
            let one = measure(&engine1, &jobs, 1);
            if base1.as_ref().is_none_or(|best| one.wall < best.wall) {
                base1 = Some(one);
            }
        }
        let m = m.expect("at least one attempt");
        let base_cps = base1.expect("at least one attempt").cycles_per_second();
        assert_eq!(
            m.cycles, reference_cycles,
            "simulated cycles must be identical across worker counts"
        );
        let ratio = m.cycles_per_second() / base_cps;
        // Scaling clearly below 1.0 means the pool is a net loss on this
        // batch (the 5% band absorbs measurement noise at parity). Warn —
        // don't fail CI on it: `perf-report` attributes the loss phase by
        // phase.
        if ratio < 0.95 {
            eprintln!(
                "bench_sim: WARNING: workers={workers} runs {ratio:.2}x the single-worker \
                 throughput (< 1.0) — the pool is a net slowdown on the smoke batch; \
                 run `perf-report` for the phase attribution"
            );
        }
        lines.push(m.json_line(Some(ratio)));
    }

    let json = lines.join("\n") + "\n";
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    print!("{json}");
    eprintln!(
        "bench_sim: {} jobs, {} simulated instructions in {:.3}s single-worker \
         ({:.2} M inst/s)",
        best.jobs,
        best.instructions,
        best.wall,
        best.instructions as f64 / best.wall / 1e6,
    );

    // The overhead guards run the same smoke programs through a bare
    // cluster loop (no engine, no validation) so the comparison isolates
    // the simulator hot path the hooks sit on.
    let programs: Vec<Program> = jobs
        .iter()
        .map(|j| j.kernel.build_for(j.variant, j.n, j.block, j.config.cores()))
        .collect();
    hook_overhead_guard(&programs, Hook::Tracer, "tracing");
    hook_overhead_guard(&programs, Hook::Profiler, "profiling");
}
