//! `bench_sim` — host-side simulator-throughput benchmark.
//!
//! Runs the fixed smoke batch (every built-in kernel, both variants, small
//! sizes) on a single worker and reports *simulated instructions per
//! host-second* — the one number that tracks the simulator's hot-path
//! performance across PRs. Writes `BENCH_sim.json` into the current
//! directory; CI runs it as a smoke (no thresholds), so the trajectory is
//! recorded from this PR onward without gating merges on a noisy metric.

use std::time::Instant;

use snitch_engine::{job, Engine};

fn main() {
    // One worker: a per-core throughput number, independent of host core
    // count. The batch is fixed (built-in catalog only, deterministic
    // order), so runs are comparable across commits.
    let jobs = job::smoke();
    let engine = Engine::new(1);

    // Warm-up pass compiles every program into the cache so the measured
    // pass times simulation, not assembly.
    let _ = engine.run(&jobs);

    let t0 = Instant::now();
    let records = engine.run(&jobs);
    let wall = t0.elapsed().as_secs_f64();

    let failed = records.iter().filter(|r| !r.ok).count();
    assert_eq!(failed, 0, "smoke batch must validate before its timing means anything");
    let instructions: u64 = records.iter().map(|r| r.instructions).sum();
    let cycles: u64 = records.iter().map(|r| r.cycles).sum();
    let ips = instructions as f64 / wall;

    let json = format!(
        "{{\"benchmark\":\"sim\",\"workload\":\"smoke\",\"jobs\":{},\"workers\":1,\
         \"simulated_instructions\":{instructions},\"simulated_cycles\":{cycles},\
         \"wall_seconds\":{wall:.6},\"instructions_per_second\":{ips:.0},\
         \"cycles_per_second\":{:.0}}}\n",
        records.len(),
        cycles as f64 / wall,
    );
    std::fs::write("BENCH_sim.json", &json).expect("write BENCH_sim.json");
    print!("{json}");
    eprintln!(
        "bench_sim: {} jobs, {instructions} simulated instructions in {wall:.3}s \
         ({:.2} M inst/s)",
        records.len(),
        ips / 1e6,
    );
}
