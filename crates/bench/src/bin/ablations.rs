//! Ablations of the design choices DESIGN.md calls out, run as
//! `snitch-engine` configuration sweeps: each ablation replicates one job
//! across cluster configurations (sharing a single compiled program) and
//! prints the architectural effect. The claims that used to be bench
//! assertions are verified here, loudly.

use snitch_engine::{job, Engine, JobSpec, RunRecord};
use snitch_kernels::registry::{Kernel, Variant};
use snitch_sim::config::ClusterConfig;

fn cycles(records: &[RunRecord]) -> Vec<u64> {
    records
        .iter()
        .map(|r| {
            assert!(
                r.ok,
                "{} failed: {}",
                r.job.label(),
                r.error.as_deref().unwrap_or("unknown error")
            );
            r.cycles
        })
        .collect()
}

fn main() {
    let engine = Engine::default();

    // 1 vs 2 integer RF write-back ports: isolates the paper's LCG
    // structural-hazard explanation.
    let base_job = JobSpec::new(Kernel::PiLcg, Variant::Baseline, 512, 0);
    let configs: Vec<ClusterConfig> = [1, 2]
        .iter()
        .map(|&p| ClusterConfig { int_wb_ports: p, ..ClusterConfig::default() })
        .collect();
    let wb = cycles(&engine.run(&job::config_sweep(&base_job, &configs)));
    println!("[ablation_wb_port] pi_lcg base cycles: 1 port {}, 2 ports {}", wb[0], wb[1]);
    assert!(wb[1] < wb[0], "a second write-back port must remove LCG stalls");

    // L0 capacity sweep: the exp/log I$ energy story.
    let exp_job = JobSpec::new(Kernel::Expf, Variant::Baseline, 256, 32);
    let configs: Vec<ClusterConfig> = [32usize, 64, 128]
        .iter()
        .map(|&cap| ClusterConfig { l0_capacity: cap, ..ClusterConfig::default() })
        .collect();
    for (cap, r) in
        [32usize, 64, 128].iter().zip(engine.run(&job::config_sweep(&exp_job, &configs)))
    {
        let stats = r.stats.as_ref().expect("l0 ablation run validates");
        println!(
            "[ablation_l0] exp base, L0 {cap:>3}: hits {} misses {}",
            stats.l0_hits, stats.l0_misses
        );
    }

    // Offload FIFO depth: bounds integer-thread run-ahead.
    let poly_job = JobSpec::new(Kernel::PolyLcg, Variant::Copift, 512, 128);
    let configs: Vec<ClusterConfig> = [2usize, 8, 16]
        .iter()
        .map(|&d| ClusterConfig { offload_fifo_depth: d, ..ClusterConfig::default() })
        .collect();
    let fifo = cycles(&engine.run(&job::config_sweep(&poly_job, &configs)));
    for (depth, cy) in [2usize, 8, 16].iter().zip(&fifo) {
        println!("[ablation_fifo] poly_lcg copift, fifo {depth:>2}: {cy} cycles");
    }
    assert!(fifo[0] >= fifo[1], "a deeper FIFO must never slow the kernel");

    // Sequencer ring depth: the documented deviation from Snitch's small
    // FREP buffer (bodies up to 80 instructions need a deeper ring).
    let configs: Vec<ClusterConfig> = [80usize, 128]
        .iter()
        .map(|&d| ClusterConfig { sequencer_depth: d, ..ClusterConfig::default() })
        .collect();
    let seq = cycles(&engine.run(&job::config_sweep(&poly_job, &configs)));
    for (depth, cy) in [80usize, 128].iter().zip(&seq) {
        println!("[ablation_seq] poly_lcg copift, ring {depth:>3}: {cy} cycles");
    }

    println!(
        "[ablations] {} simulations, {} programs compiled ({} cache hits)",
        engine.cache().hits() + engine.cache().misses(),
        engine.cache().misses(),
        engine.cache().hits()
    );
}
