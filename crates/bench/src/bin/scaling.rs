//! The cluster-scaling driver: runs the data-parallel Monte Carlo kernels
//! (`pi_lcg_par`, `pi_xoshiro128p_par`) in both variants over 1/2/4/8
//! compute cores and prints the cores × kernel cycle table that
//! `EXPERIMENTS.md`'s "Cluster scaling" section carries (the `experiments`
//! generator emits the same table through the shared
//! [`snitch_bench::scaling_tables`] renderer, so the committed file and this
//! driver can never drift apart).
//!
//! Every job validates bit-exactly against the *single-core* golden model:
//! the per-hart seed tables reproduce the global draw sequence chunk for
//! chunk, and all partial sums are integer-valued doubles, so the tree
//! reduction is exact at any core count.

use snitch_bench::{scaling_rows, scaling_tables, SCALING_CORES};
use snitch_engine::Engine;
use snitch_kernels::Kernel;

fn main() {
    let (n, block) = Kernel::PiLcgPar.operating_point();
    let rows = scaling_rows(&Engine::default());
    println!("cluster scaling at n = {n}, block = {block}, cores = {SCALING_CORES:?}\n");
    print!("{}", scaling_tables(&rows));
    for r in &rows {
        let last = SCALING_CORES.len() - 1;
        println!(
            "{}/{}: {:.2}x speedup on {} cores ({} TCDM conflicts under contention)",
            r.kernel.name(),
            r.variant.name(),
            r.speedup(last),
            SCALING_CORES[last],
            r.conflicts[last],
        );
    }
}
