//! The cluster-scaling driver: runs the data-parallel Monte Carlo kernels
//! (`pi_lcg_par`, `pi_xoshiro128p_par`) in both variants over 1/2/4/8
//! compute cores and prints the cores × kernel cycle table that
//! `EXPERIMENTS.md`'s "Cluster scaling" section carries, then runs the
//! tiled GEMM over the full cores × clusters grid and prints the 2-D
//! "Cores × clusters scaling" table (the `experiments` generator emits the
//! same tables through the shared [`snitch_bench::scaling_tables`] and
//! [`snitch_bench::scaling_grid_tables`] renderers, so the committed file
//! and this driver can never drift apart).
//!
//! Every job validates bit-exactly against the *single-core* golden model:
//! the per-hart seed tables reproduce the global draw sequence chunk for
//! chunk, and all partial sums are integer-valued doubles, so the tree
//! reduction is exact at any core count. The tiled GEMM's block-cyclic row
//! ownership gives the same guarantee across cluster counts.

use snitch_bench::{
    scaling_grid_rows, scaling_grid_tables, scaling_rows, scaling_tables, SCALING_CLUSTERS,
    SCALING_CORES,
};
use snitch_engine::Engine;
use snitch_kernels::Kernel;

fn main() {
    let engine = Engine::default();
    let (n, block) = Kernel::PiLcgPar.operating_point();
    let rows = scaling_rows(&engine);
    println!("cluster scaling at n = {n}, block = {block}, cores = {SCALING_CORES:?}\n");
    print!("{}", scaling_tables(&rows));
    let last = SCALING_CORES.len() - 1;
    for r in &rows {
        println!(
            "{}/{}: {:.2}x speedup on {} cores ({} TCDM conflicts under contention)",
            r.kernel.name(),
            r.variant.name(),
            r.speedup(last),
            SCALING_CORES[last],
            r.conflicts[last],
        );
    }

    let (gn, gblock) = Kernel::GemmTiled.operating_point();
    println!(
        "\ncores x clusters scaling at n = {gn}, block = {gblock}, \
         cores = {SCALING_CORES:?}, clusters = {SCALING_CLUSTERS:?}\n"
    );
    let grid = scaling_grid_rows(&engine);
    print!("{}", scaling_grid_tables(&grid));
    for r in &grid {
        println!(
            "{}/{} x{}: {:.2}x speedup on {} cores ({} DMA hop cycles)",
            r.kernel.name(),
            r.variant.name(),
            r.clusters,
            r.speedup(last),
            SCALING_CORES[last],
            r.dma_hop_cycles[last],
        );
    }
}
