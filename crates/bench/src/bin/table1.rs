//! Regenerates **Table I**: per-kernel static characteristics and the
//! analytical estimators of Eqs. (1)–(3), from *measured* steady-state
//! instruction mixes (normalized to the paper's per-unit granularity:
//! 4 elements for the vector kernels, 8 points for Monte Carlo).

use copift::estimate::{i_prime, s_double_prime, s_prime, thread_imbalance, MixCounts};
use snitch_bench::Fig2Row;
use snitch_engine::Engine;
use snitch_kernels::registry::Kernel;
use snitch_kernels::SteadyState;

fn unit_of(kernel: Kernel) -> f64 {
    if kernel.is_mc() {
        8.0
    } else {
        4.0
    }
}

fn mix_per_unit(kernel: Kernel, ss: &SteadyState) -> MixCounts {
    let elems = ss.delta.cycles as f64 / ss.cycles_per_elem;
    let scale = unit_of(kernel) / elems;
    MixCounts {
        n_int: (ss.delta.int_issued as f64 * scale).round() as u64,
        n_fp: (ss.delta.fp_instructions() as f64 * scale).round() as u64,
    }
}

/// One paper row: (name, base mix, TI, copift mix, I', S'', S').
type PaperRow = (&'static str, (u64, u64), f64, (u64, u64), f64, f64, f64);

fn main() {
    // Paper's Table I rows for side-by-side comparison.
    let paper: &[PaperRow] = &[
        ("exp", (43, 52), 0.83, (43, 36), 1.84, 1.83, 2.21),
        ("log", (39, 52), 0.75, (57, 36), 1.63, 1.75, 1.60),
        ("poly_lcg", (44, 80), 0.55, (72, 80), 1.90, 1.55, 1.55),
        ("pi_lcg", (44, 56), 0.79, (72, 56), 1.78, 1.79, 1.39),
        ("poly_xoshiro128p", (172, 80), 0.47, (200, 80), 1.40, 1.47, 1.26),
        ("pi_xoshiro128p", (172, 56), 0.33, (200, 56), 1.28, 1.33, 1.14),
    ];
    println!("Table I — kernel characteristics (measured steady-state mixes per paper unit)");
    println!(
        "{:<18} {:>9} {:>9} {:>6} | {:>9} {:>9} | {:>6} {:>6} {:>6} | paper: I' S'' S'",
        "kernel", "base#Int", "base#FP", "TI", "cop#Int", "cop#FP", "I'", "S''", "S'"
    );
    let rows: Vec<Fig2Row> = Fig2Row::measure_all(&Engine::default());
    for fig2_row in rows.iter().rev() {
        let k = &fig2_row.kernel;
        let base = mix_per_unit(*k, &fig2_row.base);
        let cop = mix_per_unit(*k, &fig2_row.copift);
        let row = paper.iter().find(|r| r.0 == k.name());
        let paper_str = row.map_or_else(String::new, |r| {
            format!(
                "{:.2} {:.2} {:.2}  (paper base {}i/{}f cop {}i/{}f)",
                r.4, r.5, r.6, r.1 .0, r.1 .1, r.3 .0, r.3 .1
            )
        });
        println!(
            "{:<18} {:>9} {:>9} {:>6.2} | {:>9} {:>9} | {:>6.2} {:>6.2} {:>6.2} | {paper_str}",
            k.name(),
            base.n_int,
            base.n_fp,
            thread_imbalance(base),
            cop.n_int,
            cop.n_fp,
            i_prime(cop),
            s_double_prime(base),
            s_prime(base, cop),
        );
    }
    println!("\nBuffer plan of the paper's Fig. 1b expf body (Steps 2, 4–5):");
    let body = expf_fig1b_body();
    let analysis = copift::analyze(&body).expect("expf body analyzes");
    println!(
        "  phases: {} | cut edges: {} | buffers: {} | bytes/element: {}",
        analysis.partition.len(),
        analysis.partition.cut_edges.len(),
        analysis.tiling.buffers.len(),
        analysis.tiling.bytes_per_element()
    );
    for buf in &analysis.tiling.buffers {
        println!(
            "  buffer {:?}: {} B/elem, phase {} -> {}, x{} replicas",
            buf.kind, buf.elem_bytes, buf.producer, buf.consumer, buf.replicas
        );
    }
    let max_block = analysis.tiling.max_block(128 * 1024, 16 * 1024);
    println!("  max block fitting L1 (16 KiB reserved): {max_block} elements");
}

/// The paper's Fig. 1b loop body (shared with the copift crate's tests).
fn expf_fig1b_body() -> Vec<snitch_riscv::inst::Inst> {
    use snitch_asm::builder::ProgramBuilder;
    use snitch_riscv::reg::{FpReg, IntReg};
    let mut b = ProgramBuilder::new();
    let (xp, yp, ki, t, tbl) = (IntReg::A3, IntReg::A4, IntReg::S2, IntReg::S3, IntReg::S4);
    b.fld(FpReg::FA3, xp, 0);
    b.fmul_d(FpReg::FA3, FpReg::FA3, FpReg::FS4);
    b.fadd_d(FpReg::FA1, FpReg::FA3, FpReg::FS5);
    b.fsd(FpReg::FA1, ki, 0);
    b.lw(IntReg::A0, ki, 0);
    b.andi(IntReg::A1, IntReg::A0, 0x1f);
    b.slli(IntReg::A1, IntReg::A1, 3);
    b.add(IntReg::A1, tbl, IntReg::A1);
    b.lw(IntReg::A2, IntReg::A1, 0);
    b.lw(IntReg::A1, IntReg::A1, 4);
    b.slli(IntReg::A0, IntReg::A0, 0xf);
    b.sw(IntReg::A2, t, 0);
    b.add(IntReg::A0, IntReg::A0, IntReg::A1);
    b.sw(IntReg::A0, t, 4);
    b.fsub_d(FpReg::FA2, FpReg::FA1, FpReg::FS5);
    b.fsub_d(FpReg::FA3, FpReg::FA3, FpReg::FA2);
    b.fmadd_d(FpReg::FA2, FpReg::FS6, FpReg::FA3, FpReg::FS7);
    b.fld(FpReg::FA0, t, 0);
    b.fmadd_d(FpReg::FA4, FpReg::FS8, FpReg::FA3, FpReg::FS9);
    b.fmul_d(FpReg::FA1, FpReg::FA3, FpReg::FA3);
    b.fmadd_d(FpReg::FA4, FpReg::FA2, FpReg::FA1, FpReg::FA4);
    b.fmul_d(FpReg::FA4, FpReg::FA4, FpReg::FA0);
    b.fsd(FpReg::FA4, yp, 0);
    b.build().unwrap().text().to_vec()
}
