//! Regenerates **Figure 3**: IPC of the `poly_lcg` COPIFT kernel over
//! problem size × block size, with the paper's ">99.5%" and per-size "peak"
//! annotations.

use snitch_bench::{fig3_ipc, FIG3_BLOCKS, FIG3_SIZES};

fn main() {
    println!("Figure 3 — poly_lcg COPIFT IPC over problem size (rows) x block size (cols)");
    print!("{:>8} |", "n \\ B");
    for b in FIG3_BLOCKS {
        print!(" {b:>6}");
    }
    println!(" | peak");
    let mut grid = vec![vec![0.0f64; FIG3_BLOCKS.len()]; FIG3_SIZES.len()];
    for (i, &n) in FIG3_SIZES.iter().enumerate() {
        for (j, &b) in FIG3_BLOCKS.iter().enumerate() {
            grid[i][j] = fig3_ipc(n, b);
        }
    }
    // Per-block maximum IPC (for the >99.5% annotation).
    let col_max: Vec<f64> =
        (0..FIG3_BLOCKS.len()).map(|j| grid.iter().map(|r| r[j]).fold(0.0, f64::max)).collect();
    for (i, &n) in FIG3_SIZES.iter().enumerate() {
        print!("{n:>8} |");
        let mut best = (0usize, 0.0f64);
        for (j, _) in FIG3_BLOCKS.iter().enumerate() {
            let v = grid[i][j];
            if v > best.1 {
                best = (j, v);
            }
            print!(" {v:>6.3}");
        }
        println!(" | B={} ({:.3})", FIG3_BLOCKS[best.0], best.1);
    }
    println!("\n'>99.5%' smallest problem size reaching 99.5% of each block size's max IPC:");
    for (j, &b) in FIG3_BLOCKS.iter().enumerate() {
        let thresh = 0.995 * col_max[j];
        let at = FIG3_SIZES.iter().enumerate().find(|(i, _)| grid[*i][j] >= thresh);
        match at {
            Some((_, &n)) => println!("  B={b:>3}: n >= {n} (max IPC {:.3})", col_max[j]),
            None => println!("  B={b:>3}: not reached"),
        }
    }
    println!(
        "\nExpected trends: IPC rises with n (prologue amortization); the per-size peak\n\
         shifts to larger blocks as n grows (per-block SSR/buffer-switch overheads)."
    );
}
