//! Regenerates **Figure 3**: IPC of the `poly_lcg` COPIFT kernel over
//! problem size × block size, with the paper's ">99.5%" and per-size "peak"
//! annotations.
//!
//! The 56-cell grid runs as one `snitch-engine` batch across all host cores.

use snitch_bench::{fig3_grid, FIG3_BLOCKS, FIG3_SIZES};
use snitch_engine::Engine;

fn main() {
    println!("Figure 3 — poly_lcg COPIFT IPC over problem size (rows) x block size (cols)");
    print!("{:>8} |", "n \\ B");
    for b in FIG3_BLOCKS {
        print!(" {b:>6}");
    }
    println!(" | peak");
    let grid = fig3_grid(&Engine::default());
    // Per-block maximum IPC (for the >99.5% annotation).
    let col_max: Vec<f64> =
        (0..FIG3_BLOCKS.len()).map(|j| grid.iter().map(|r| r[j]).fold(0.0, f64::max)).collect();
    for (i, &n) in FIG3_SIZES.iter().enumerate() {
        print!("{n:>8} |");
        let mut best = (0usize, 0.0f64);
        for (j, _) in FIG3_BLOCKS.iter().enumerate() {
            let v = grid[i][j];
            if v > best.1 {
                best = (j, v);
            }
            print!(" {v:>6.3}");
        }
        println!(" | B={} ({:.3})", FIG3_BLOCKS[best.0], best.1);
    }
    println!("\n'>99.5%' smallest problem size reaching 99.5% of each block size's max IPC:");
    for (j, &b) in FIG3_BLOCKS.iter().enumerate() {
        let thresh = 0.995 * col_max[j];
        let at = FIG3_SIZES.iter().enumerate().find(|(i, _)| grid[*i][j] >= thresh);
        match at {
            Some((_, &n)) => println!("  B={b:>3}: n >= {n} (max IPC {:.3})", col_max[j]),
            None => println!("  B={b:>3}: not reached"),
        }
    }
    println!(
        "\nExpected trends: IPC rises with n (prologue amortization); the per-size peak\n\
         shifts to larger blocks as n grows (per-block SSR/buffer-switch overheads)."
    );
}
