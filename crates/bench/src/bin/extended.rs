//! The extended-suite driver: steady-state measurements for every cataloged
//! kernel **beyond** the paper's Figure 2 suite (the auto-compiled
//! `sigmoid`, `dot_lcg` and `softmax` workloads, plus anything added via
//! `snitch_kernels::register`), printed as EXPERIMENTS.md-style tables.
//!
//! The paper has no reference numbers for these kernels; the table reports
//! the measured shape (IPC gain, power ratio, speedup, energy improvement)
//! next to the Eq. 1–2 estimators so the extended workloads can be read
//! exactly like Figure 2.

use snitch_bench::{extended_tables, geomean, Fig2Row};
use snitch_engine::Engine;
use snitch_kernels::Kernel;

fn main() {
    let kernels = Kernel::extended();
    assert!(!kernels.is_empty(), "the catalog ships extended kernels");
    let rows: Vec<Fig2Row> = Fig2Row::measure_suite(&Engine::default(), &kernels);
    print!("{}", extended_tables(&rows));
    let sp: Vec<f64> = rows.iter().map(Fig2Row::speedup).collect();
    let ei: Vec<f64> = rows.iter().map(Fig2Row::energy_improvement).collect();
    println!(
        "geomean speedup {:.2}x, geomean energy improvement {:.2}x over {} extended kernels",
        geomean(&sp),
        geomean(&ei),
        rows.len()
    );
}
