//! Shared measurement code for the experiment drivers that regenerate the
//! COPIFT paper's Table I and Figures 2–3.

use snitch_kernels::harness::steady_state;
use snitch_kernels::registry::{Kernel, Variant};
use snitch_kernels::SteadyState;

/// Steady-state measurement of one (kernel, variant) pair at its Figure 2
/// operating point, derived by differencing two problem sizes.
///
/// # Panics
///
/// Panics if either run fails validation (reproduction bugs should be loud).
#[must_use]
pub fn measure_steady(kernel: Kernel, variant: Variant) -> SteadyState {
    let (n, block) = kernel.operating_point();
    let small = kernel.run(variant, n, block).expect("small run validates");
    let large = kernel.run(variant, 2 * n, block).expect("large run validates");
    steady_state(&small.stats, n, &large.stats, 2 * n)
}

/// One Figure 2 row: baseline and COPIFT steady-state measurements plus the
/// derived comparisons.
#[derive(Clone, Debug)]
pub struct Fig2Row {
    /// Kernel.
    pub kernel: Kernel,
    /// Baseline steady state.
    pub base: SteadyState,
    /// COPIFT steady state.
    pub copift: SteadyState,
}

impl Fig2Row {
    /// Measures one kernel.
    #[must_use]
    pub fn measure(kernel: Kernel) -> Fig2Row {
        Fig2Row {
            kernel,
            base: measure_steady(kernel, Variant::Baseline),
            copift: measure_steady(kernel, Variant::Copift),
        }
    }

    /// Steady-state speedup (cycles per element ratio).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.base.cycles_per_elem / self.copift.cycles_per_elem
    }

    /// Energy improvement (energy per element ratio).
    #[must_use]
    pub fn energy_improvement(&self) -> f64 {
        self.base.energy_per_elem_nj / self.copift.energy_per_elem_nj
    }

    /// Power ratio (COPIFT / base).
    #[must_use]
    pub fn power_ratio(&self) -> f64 {
        self.copift.power_mw / self.base.power_mw
    }

    /// Expected IPC `I′` from the measured steady-state instruction mix
    /// (Eq. 2 evaluated on dynamic counts).
    #[must_use]
    pub fn i_prime(&self) -> f64 {
        let d = &self.copift.delta;
        let n_int = d.int_issued as f64;
        let n_fp = d.fp_instructions() as f64;
        (n_int + n_fp) / n_int.max(n_fp)
    }

    /// Expected speedup `S′` from measured mixes (Eq. 1).
    #[must_use]
    pub fn s_prime(&self) -> f64 {
        let b = &self.base.delta;
        let c = &self.copift.delta;
        (b.int_issued + b.fp_instructions()) as f64
            / (c.int_issued as f64).max(c.fp_instructions() as f64)
    }
}

/// Geometric mean.
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// One Figure 3 cell: full-run IPC of `poly_lcg` COPIFT (prologue and
/// epilogue included — the point of the figure).
///
/// # Panics
///
/// Panics if the run fails validation.
#[must_use]
pub fn fig3_ipc(n: usize, block: usize) -> f64 {
    let r = Kernel::PolyLcg.run(Variant::Copift, n, block).expect("fig3 run validates");
    r.stats.ipc()
}

/// The paper's Figure 3 block sizes.
pub const FIG3_BLOCKS: [usize; 7] = [32, 48, 64, 96, 128, 192, 256];
/// Figure 3 problem sizes.
pub const FIG3_SIZES: [usize; 8] = [768, 1536, 3072, 6144, 12288, 24576, 49152, 98304];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fig3_axes_are_valid_configs() {
        for &b in &FIG3_BLOCKS {
            for &n in &FIG3_SIZES {
                assert_eq!(n % b, 0, "block {b} must divide size {n}");
                assert!(n / b >= 2);
                assert_eq!(b % 8, 0);
            }
        }
    }
}
