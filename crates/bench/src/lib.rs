//! Shared measurement code for the experiment drivers that regenerate the
//! COPIFT paper's Table I and Figures 2–3.
//!
//! All batched measurements run through [`snitch_engine`]: the drivers
//! expand their experiment matrix into a job batch, the engine fans the
//! batch across worker threads (caching compiled programs), and the
//! steady-state derivations here consume the ordered records. This module
//! is the **only** place steady-state measure logic lives.

#![forbid(unsafe_code)]

use snitch_engine::{job, Engine, RunRecord};
use snitch_kernels::harness::steady_state;
use snitch_kernels::registry::{Kernel, Variant};
use snitch_kernels::SteadyState;
use snitch_sim::stats::Stats;

/// Steady-state measurement of one (kernel, variant) pair at its Figure 2
/// operating point, derived by differencing two problem sizes.
///
/// # Panics
///
/// Panics if either run fails validation (reproduction bugs should be loud).
#[must_use]
pub fn measure_steady(kernel: Kernel, variant: Variant) -> SteadyState {
    let (n, block) = kernel.operating_point();
    let small = kernel.run(variant, n, block).expect("small run validates");
    let large = kernel.run(variant, 2 * n, block).expect("large run validates");
    steady_state(&small.stats, n, &large.stats, 2 * n)
}

/// The stats of a record, panicking loudly on a failed job.
fn stats_of(record: &RunRecord) -> &Stats {
    assert!(
        record.ok,
        "{} failed: {}",
        record.job.label(),
        record.error.as_deref().unwrap_or("unknown error")
    );
    record.stats.as_ref().expect("successful records carry stats")
}

/// One Figure 2 row: baseline and COPIFT steady-state measurements plus the
/// derived comparisons.
#[derive(Clone, Debug)]
pub struct Fig2Row {
    /// Kernel.
    pub kernel: Kernel,
    /// Baseline steady state.
    pub base: SteadyState,
    /// COPIFT steady state.
    pub copift: SteadyState,
}

impl Fig2Row {
    /// Measures one kernel serially.
    #[must_use]
    pub fn measure(kernel: Kernel) -> Fig2Row {
        Fig2Row {
            kernel,
            base: measure_steady(kernel, Variant::Baseline),
            copift: measure_steady(kernel, Variant::Copift),
        }
    }

    /// Measures the paper's six kernels as one engine batch (24 simulations
    /// fanned across the engine's workers). Results are identical to six
    /// serial [`measure`](Self::measure) calls; only wall-clock differs.
    ///
    /// # Panics
    ///
    /// Panics if any run fails validation.
    #[must_use]
    pub fn measure_all(engine: &Engine) -> Vec<Fig2Row> {
        Self::measure_suite(engine, &Kernel::paper())
    }

    /// Measures an arbitrary kernel list (e.g. [`Kernel::extended`] for the
    /// extended suite, or the whole catalog) as one engine batch of
    /// steady-state pairs, four simulations per kernel. Kernels that don't
    /// support the `(n, 2n)` methodology ([`Kernel::steady_measurable`])
    /// are skipped — the scaling-grid driver measures those.
    ///
    /// # Panics
    ///
    /// Panics if any run fails validation.
    #[must_use]
    pub fn measure_suite(engine: &Engine, kernels: &[Kernel]) -> Vec<Fig2Row> {
        let kernels: Vec<Kernel> =
            kernels.iter().copied().filter(|k| k.steady_measurable()).collect();
        let jobs = job::steady_pairs(&kernels);
        let records = engine.run(&jobs);
        // steady_pairs() is kernel-major: [base n, base 2n, copift n, copift 2n].
        kernels
            .iter()
            .zip(records.chunks_exact(4))
            .map(|(&kernel, chunk)| {
                let (n, _) = kernel.operating_point();
                Fig2Row {
                    kernel,
                    base: steady_state(stats_of(&chunk[0]), n, stats_of(&chunk[1]), 2 * n),
                    copift: steady_state(stats_of(&chunk[2]), n, stats_of(&chunk[3]), 2 * n),
                }
            })
            .collect()
    }

    /// Steady-state speedup (cycles per element ratio).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.base.cycles_per_elem / self.copift.cycles_per_elem
    }

    /// Energy improvement (energy per element ratio).
    #[must_use]
    pub fn energy_improvement(&self) -> f64 {
        self.base.energy_per_elem_nj / self.copift.energy_per_elem_nj
    }

    /// Power ratio (COPIFT / base).
    #[must_use]
    pub fn power_ratio(&self) -> f64 {
        self.copift.power_mw / self.base.power_mw
    }

    /// Expected IPC `I′` from the measured steady-state instruction mix
    /// (Eq. 2 evaluated on dynamic counts).
    #[must_use]
    pub fn i_prime(&self) -> f64 {
        let d = &self.copift.delta;
        let n_int = d.int_issued as f64;
        let n_fp = d.fp_instructions() as f64;
        (n_int + n_fp) / n_int.max(n_fp)
    }

    /// Expected speedup `S′` from measured mixes (Eq. 1).
    #[must_use]
    pub fn s_prime(&self) -> f64 {
        let b = &self.base.delta;
        let c = &self.copift.delta;
        (b.int_issued + b.fp_instructions()) as f64
            / (c.int_issued as f64).max(c.fp_instructions() as f64)
    }
}

/// Renders extended-suite measurement rows as the EXPERIMENTS.md markdown
/// table (shared by the `extended` driver and the `experiments` generator so
/// the committed file and the ad-hoc driver can never drift apart).
#[must_use]
pub fn extended_tables(rows: &[Fig2Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| kernel | IPC base | IPC COPIFT | power base | power COPIFT | speedup | energy imp. | I′ (exp.) | S′ (exp.) |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {:.2} | {:.2} | {:.1} | {:.1} | {:.2} | {:.2} | {:.2} | {:.2} |",
            r.kernel.name(),
            r.base.ipc,
            r.copift.ipc,
            r.base.power_mw,
            r.copift.power_mw,
            r.speedup(),
            r.energy_improvement(),
            r.i_prime(),
            r.s_prime(),
        );
    }
    out
}

/// The core counts swept by the cluster-scaling driver (re-exported from
/// the engine's canonical batch definition, so the sweep CLI's `scaling`
/// preset and this driver can never drift apart).
pub use snitch_engine::job::SCALING_CORES;

/// One row of the cluster-scaling table: full-run cycles of one
/// `(kernel, variant)` at every core count of [`SCALING_CORES`], plus the
/// TCDM conflict counts that prove the harts actually contend.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Data-parallel kernel.
    pub kernel: Kernel,
    /// Code variant.
    pub variant: Variant,
    /// Total cycles per core count (same order as [`SCALING_CORES`]).
    pub cycles: Vec<u64>,
    /// TCDM bank conflicts per core count.
    pub conflicts: Vec<u64>,
}

impl ScalingRow {
    /// Parallel speedup at `cores_index` relative to the single-core run.
    #[must_use]
    pub fn speedup(&self, cores_index: usize) -> f64 {
        self.cycles[0] as f64 / self.cycles[cores_index] as f64
    }
}

/// Measures the data-parallel kernels over the [`SCALING_CORES`] axis at
/// their shared operating point, as one engine batch (16 simulations, one
/// compiled program per core count). Every run validates bit-exactly
/// against the single-core golden model — the decomposition guarantee of
/// the per-hart seed tables.
///
/// # Panics
///
/// Panics if any run fails validation.
#[must_use]
pub fn scaling_rows(engine: &Engine) -> Vec<ScalingRow> {
    let kernels = job::scaling_kernels();
    let jobs = job::scaling_default();
    let records = engine.run(&jobs);
    let mut rows = Vec::with_capacity(kernels.len() * 2);
    let mut chunks = records.chunks_exact(SCALING_CORES.len());
    for &kernel in &kernels {
        for variant in Variant::all() {
            let chunk = chunks.next().expect("scaling batch is kernel x variant x cores");
            rows.push(ScalingRow {
                kernel,
                variant,
                cycles: chunk.iter().map(|r| stats_of(r).cycles).collect(),
                conflicts: chunk.iter().map(|r| stats_of(r).tcdm_conflicts).collect(),
            });
        }
    }
    rows
}

/// Renders cluster-scaling rows as the EXPERIMENTS.md markdown table
/// (shared by the `scaling` driver and the `experiments` generator).
#[must_use]
pub fn scaling_tables(rows: &[ScalingRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut header = String::from("| kernel | variant |");
    for c in SCALING_CORES {
        let _ = write!(header, " {c} core{} |", if c == 1 { "" } else { "s" });
    }
    let top = SCALING_CORES[SCALING_CORES.len() - 1];
    let _ = writeln!(out, "{header} speedup @{top} | conflicts @{top} |");
    let _ = writeln!(out, "|{}", "---|".repeat(SCALING_CORES.len() + 4));
    for r in rows {
        let mut line = format!("| {} | {} |", r.kernel.name(), r.variant.name());
        for &cycles in &r.cycles {
            let _ = write!(line, " {cycles} |");
        }
        let last = SCALING_CORES.len() - 1;
        let _ = writeln!(out, "{line} {:.2}× | {} |", r.speedup(last), r.conflicts[last]);
    }
    out
}

/// The cluster counts swept by the 2-D scaling grid (re-exported from the
/// engine's canonical batch definition, so the sweep CLI's `scaling-grid`
/// preset and the drivers can never drift apart).
pub use snitch_engine::job::SCALING_CLUSTERS;

/// One row of the cores × clusters scaling table: full-run cycles of one
/// `(kernel, variant)` at one cluster count over every core count of
/// [`SCALING_CORES`], plus the inter-cluster DMA hop cycles that prove the
/// tiles actually travelled over the system interconnect.
#[derive(Clone, Debug)]
pub struct ScalingGridRow {
    /// Tiled kernel.
    pub kernel: Kernel,
    /// Code variant.
    pub variant: Variant,
    /// Cluster count of this row.
    pub clusters: usize,
    /// Total cycles per core count (same order as [`SCALING_CORES`]).
    pub cycles: Vec<u64>,
    /// Inter-cluster/L2 DMA hop cycles per core count.
    pub dma_hop_cycles: Vec<u64>,
}

impl ScalingGridRow {
    /// Parallel speedup at `cores_index` relative to the row's single-core
    /// run (scaling within a fixed cluster count).
    #[must_use]
    pub fn speedup(&self, cores_index: usize) -> f64 {
        self.cycles[0] as f64 / self.cycles[cores_index] as f64
    }
}

/// Measures the tiled GEMM over the [`SCALING_CORES`] × [`SCALING_CLUSTERS`]
/// grid at its operating point, as one engine batch (one compiled program
/// per grid shape). Every run validates bit-exactly against the
/// single-cluster golden model — the decomposition guarantee of the
/// block-cyclic row ownership (DESIGN.md §18).
///
/// # Panics
///
/// Panics if any run fails validation.
#[must_use]
pub fn scaling_grid_rows(engine: &Engine) -> Vec<ScalingGridRow> {
    let jobs = job::scaling_grid_default();
    let records = engine.run(&jobs);
    // scaling_grid() is kernel-major, then variant, then clusters, with
    // cores innermost: each chunk is one table row.
    let mut rows = Vec::new();
    let mut chunks = records.chunks_exact(SCALING_CORES.len());
    for variant in Variant::all() {
        for &clusters in &SCALING_CLUSTERS {
            let chunk = chunks.next().expect("grid batch is variant x clusters x cores");
            rows.push(ScalingGridRow {
                kernel: Kernel::GemmTiled,
                variant,
                clusters,
                cycles: chunk.iter().map(|r| stats_of(r).cycles).collect(),
                dma_hop_cycles: chunk.iter().map(|r| stats_of(r).dma_hop_cycles).collect(),
            });
        }
    }
    rows
}

/// Renders cores × clusters scaling rows as the EXPERIMENTS.md markdown
/// table (shared by the `scaling` driver and the `experiments` generator).
#[must_use]
pub fn scaling_grid_tables(rows: &[ScalingGridRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut header = String::from("| kernel | variant | clusters |");
    for c in SCALING_CORES {
        let _ = write!(header, " {c} core{} |", if c == 1 { "" } else { "s" });
    }
    let top = SCALING_CORES[SCALING_CORES.len() - 1];
    let _ = writeln!(out, "{header} speedup @{top} | DMA hop cycles @{top} |");
    let _ = writeln!(out, "|{}", "---|".repeat(SCALING_CORES.len() + 5));
    for r in rows {
        let mut line = format!("| {} | {} | {} |", r.kernel.name(), r.variant.name(), r.clusters);
        for &cycles in &r.cycles {
            let _ = write!(line, " {cycles} |");
        }
        let last = SCALING_CORES.len() - 1;
        let _ = writeln!(out, "{line} {:.2}× | {} |", r.speedup(last), r.dma_hop_cycles[last]);
    }
    out
}

/// Geometric mean.
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// The full Figure 3 IPC grid, `grid[size_index][block_index]` — full-run
/// IPC of `poly_lcg` COPIFT with prologue and epilogue included (the point
/// of the figure) — computed as one engine batch (56 simulations).
///
/// # Panics
///
/// Panics if any run fails validation.
#[must_use]
pub fn fig3_grid(engine: &Engine) -> Vec<Vec<f64>> {
    let jobs = job::figure3_paper();
    let records = engine.run(&jobs);
    records
        .chunks_exact(FIG3_BLOCKS.len())
        .map(|row| row.iter().map(|r| stats_of(r).ipc()).collect())
        .collect()
}

pub use snitch_engine::job::{FIG3_BLOCKS, FIG3_SIZES};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fig3_axes_are_valid_configs() {
        for &b in &FIG3_BLOCKS {
            for &n in &FIG3_SIZES {
                assert_eq!(n % b, 0, "block {b} must divide size {n}");
                assert!(n / b >= 2);
                assert_eq!(b % 8, 0);
            }
        }
    }

    #[test]
    fn engine_rows_match_serial_measurement() {
        // The engine path must reproduce the serial path bit-for-bit.
        let rows = Fig2Row::measure_all(&Engine::new(2));
        let serial = Fig2Row::measure(Kernel::PiLcg);
        let row = rows.iter().find(|r| r.kernel == Kernel::PiLcg).expect("pi_lcg row");
        assert_eq!(row.base.delta, serial.base.delta);
        assert_eq!(row.copift.delta, serial.copift.delta);
        assert!((row.speedup() - serial.speedup()).abs() < 1e-12);
    }
}

/// One row of the overlap-profile table: the trace-level per-cycle lane
/// occupancy of one `(kernel, variant)` run at its smoke point, plus the
/// analyzed [`Profile`](snitch_trace::Profile) for further rendering.
#[derive(Clone, Debug)]
pub struct OverlapRow {
    /// Kernel.
    pub kernel: Kernel,
    /// Code variant.
    pub variant: Variant,
    /// Total cycles of the run.
    pub cycles: u64,
    /// Full-run IPC.
    pub ipc: f64,
    /// The analyzed trace.
    pub profile: snitch_trace::Profile,
    /// Hart-0 lane occupancy over the full run.
    pub occupancy: snitch_trace::Occupancy,
}

/// Traces the paper's six kernels in both variants at their smoke points
/// (one engine batch of 12 traced jobs; every run validates bit-exactly
/// before its trace counts) and analyzes hart 0's lane occupancy.
///
/// # Panics
///
/// Panics if any run fails validation.
#[must_use]
pub fn overlap_rows(engine: &Engine) -> Vec<OverlapRow> {
    let mut jobs = Vec::new();
    for kernel in Kernel::paper() {
        let (n, block) = kernel.smoke_point();
        for variant in Variant::all() {
            jobs.push(snitch_engine::JobSpec::new(kernel, variant, n, block).traced());
        }
    }
    let records = engine.run(&jobs);
    records
        .iter()
        .map(|r| {
            let stats = stats_of(r);
            let events = r.trace.as_deref().expect("traced job carries events");
            let profile = snitch_trace::Profile::new(events, stats.cycles);
            let occupancy = profile.occupancy(0);
            OverlapRow {
                kernel: r.job.kernel,
                variant: r.job.variant,
                cycles: stats.cycles,
                ipc: stats.ipc(),
                profile,
                occupancy,
            }
        })
        .collect()
}

/// Renders overlap rows as the EXPERIMENTS.md markdown table (shared by
/// the `overlap` driver and the `experiments` generator so the committed
/// file and the ad-hoc driver can never drift apart).
#[must_use]
pub fn overlap_tables(rows: &[OverlapRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| kernel | variant | cycles | IPC | steady IPC | overlap % | core-only % | frep-only % | idle % |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|");
    for r in rows {
        let occ = &r.occupancy;
        let pct = |n: u64| 100.0 * n as f64 / occ.window as f64;
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.3} | {:.3} | {:.1} | {:.1} | {:.1} | {:.1} |",
            r.kernel.name(),
            r.variant.name(),
            r.cycles,
            r.ipc,
            r.profile.steady_ipc(),
            pct(occ.overlap),
            pct(occ.core_busy - occ.overlap),
            pct(occ.frep_busy - occ.overlap),
            pct(occ.idle),
        );
    }
    out
}

/// An ASCII strip of one row's hart-0 steady-state occupancy (the
/// Perfetto-screenshot-equivalent text view), at most `width` cycles wide.
#[must_use]
pub fn overlap_strip(row: &OverlapRow, width: u64) -> String {
    let steady = row.profile.steady_window();
    let window = steady.start..(steady.start + width).min(steady.end);
    format!(
        "{}/{} steady-state occupancy, cycles [{}, {}) (█ = lane issued):\n\n```text\n{}```\n",
        row.kernel.name(),
        row.variant.name(),
        window.start,
        window.end,
        row.profile.ascii_timeline(0, &window, width as usize),
    )
}
