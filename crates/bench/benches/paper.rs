//! Criterion benches, one per paper table/figure: each benchmark executes
//! the workload that regenerates the corresponding result (host wall-clock
//! is what Criterion reports; the architectural numbers come from the
//! `table1`/`fig2`/`fig3`/`experiments` binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use snitch_kernels::registry::{Kernel, Variant};

fn table1_static_analysis(c: &mut Criterion) {
    // The COPIFT methodology pipeline on a representative mixed body.
    let program = Kernel::PiLcg.build(Variant::Baseline, 8, 0);
    // Strip control flow: analyze the straight-line prefix.
    let body: Vec<_> = program
        .text()
        .iter()
        .copied()
        .take_while(|i| !i.is_control_flow())
        .collect();
    c.bench_function("table1_static_analysis", |b| {
        b.iter(|| copift::analyze(black_box(&body)).expect("analyzes"));
    });
}

fn fig2a_ipc(c: &mut Criterion) {
    c.bench_function("fig2a_ipc_pi_lcg_copift", |b| {
        b.iter(|| {
            let r = Kernel::PiLcg.run(Variant::Copift, 1024, 128).expect("validates");
            black_box(r.stats.ipc())
        });
    });
}

fn fig2b_power(c: &mut Criterion) {
    c.bench_function("fig2b_power_exp_base", |b| {
        b.iter(|| {
            let r = Kernel::Expf.run(Variant::Baseline, 512, 64).expect("validates");
            black_box(r.power_mw)
        });
    });
}

fn fig2c_speedup_energy(c: &mut Criterion) {
    c.bench_function("fig2c_speedup_exp", |b| {
        b.iter(|| {
            let base = Kernel::Expf.run(Variant::Baseline, 512, 64).expect("base");
            let fast = Kernel::Expf.run(Variant::Copift, 512, 64).expect("copift");
            black_box(base.total_cycles as f64 / fast.total_cycles as f64)
        });
    });
}

fn fig3_block_sweep(c: &mut Criterion) {
    c.bench_function("fig3_cell_poly_lcg", |b| {
        b.iter(|| {
            let r = Kernel::PolyLcg.run(Variant::Copift, 1536, 96).expect("validates");
            black_box(r.stats.ipc())
        });
    });
}

criterion_group! {
    name = paper;
    config = Criterion::default().sample_size(10);
    targets = table1_static_analysis, fig2a_ipc, fig2b_power, fig2c_speedup_energy,
              fig3_block_sweep
}
criterion_main!(paper);
