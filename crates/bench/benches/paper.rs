//! Wall-clock micro-benchmarks, one per paper table/figure: each benchmark
//! times the host-side workload that regenerates the corresponding result
//! (the architectural numbers come from the `table1`/`fig2`/`fig3`/
//! `experiments`/`ablations` binaries).
//!
//! Hand-rolled `harness = false` timing loop — no external bench framework.

use std::hint::black_box;
use std::time::Instant;

use snitch_kernels::registry::{Kernel, Variant};

const SAMPLES: u32 = 10;

fn bench(name: &str, mut f: impl FnMut()) {
    // Warm-up, then a fixed sample count; report min/mean.
    f();
    let mut total = std::time::Duration::ZERO;
    let mut best = std::time::Duration::MAX;
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed();
        total += dt;
        best = best.min(dt);
    }
    println!("{name:<28} min {best:>12.3?}   mean {:>12.3?}", total / SAMPLES);
}

fn main() {
    println!("paper benches ({SAMPLES} samples each, after warm-up)");

    bench("table1_static_analysis", || {
        let program = Kernel::PiLcg.build(Variant::Baseline, 8, 0);
        let body: Vec<_> =
            program.text().iter().copied().take_while(|i| !i.is_control_flow()).collect();
        black_box(copift::analyze(black_box(&body)).expect("analyzes"));
    });

    bench("fig2a_ipc_pi_lcg_copift", || {
        let r = Kernel::PiLcg.run(Variant::Copift, 1024, 128).expect("validates");
        black_box(r.stats.ipc());
    });

    bench("fig2b_power_exp_base", || {
        let r = Kernel::Expf.run(Variant::Baseline, 512, 64).expect("validates");
        black_box(r.power_mw);
    });

    bench("fig2c_speedup_exp", || {
        let base = Kernel::Expf.run(Variant::Baseline, 512, 64).expect("base");
        let fast = Kernel::Expf.run(Variant::Copift, 512, 64).expect("copift");
        black_box(base.total_cycles as f64 / fast.total_cycles as f64);
    });

    bench("fig3_cell_poly_lcg", || {
        let r = Kernel::PolyLcg.run(Variant::Copift, 1536, 96).expect("validates");
        black_box(r.stats.ipc());
    });
}
