//! Ablation benches for the design choices DESIGN.md calls out. Each bench
//! prints the architectural effect once (cycle counts under the modified
//! configuration) and then measures the simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use snitch_kernels::registry::{Kernel, Variant};
use snitch_sim::config::ClusterConfig;

fn run_cycles(kernel: Kernel, variant: Variant, n: usize, block: usize, cfg: ClusterConfig) -> u64 {
    kernel.run_with(variant, n, block, cfg).expect("validates").total_cycles
}

/// 1 vs 2 integer RF write-back ports: isolates the paper's LCG
/// structural-hazard explanation.
fn ablation_wb_port(c: &mut Criterion) {
    let base = run_cycles(Kernel::PiLcg, Variant::Baseline, 512, 0, ClusterConfig::default());
    let two = run_cycles(
        Kernel::PiLcg,
        Variant::Baseline,
        512,
        0,
        ClusterConfig { int_wb_ports: 2, ..ClusterConfig::default() },
    );
    println!("[ablation_wb_port] pi_lcg base cycles: 1 port {base}, 2 ports {two}");
    assert!(two < base, "a second write-back port must remove LCG stalls");
    c.bench_function("ablation_wb_port", |b| {
        b.iter(|| {
            black_box(run_cycles(
                Kernel::PiLcg,
                Variant::Baseline,
                512,
                0,
                ClusterConfig { int_wb_ports: 2, ..ClusterConfig::default() },
            ))
        });
    });
}

/// L0 capacity sweep: the exp/log I$ energy story.
fn ablation_l0_capacity(c: &mut Criterion) {
    for cap in [32usize, 64, 128] {
        let cfg = ClusterConfig { l0_capacity: cap, ..ClusterConfig::default() };
        let r = Kernel::Expf.run_with(Variant::Baseline, 256, 32, cfg).expect("validates");
        println!(
            "[ablation_l0] exp base, L0 {cap:>3}: hits {} misses {}",
            r.stats.l0_hits, r.stats.l0_misses
        );
    }
    c.bench_function("ablation_l0_capacity", |b| {
        b.iter(|| {
            let cfg = ClusterConfig { l0_capacity: 128, ..ClusterConfig::default() };
            black_box(Kernel::Expf.run_with(Variant::Baseline, 256, 32, cfg).unwrap().total_cycles)
        });
    });
}

/// Offload FIFO depth: bounds integer-thread run-ahead.
fn ablation_fifo_depth(c: &mut Criterion) {
    for depth in [2usize, 8, 16] {
        let cfg = ClusterConfig { offload_fifo_depth: depth, ..ClusterConfig::default() };
        let cy = run_cycles(Kernel::PolyLcg, Variant::Copift, 512, 128, cfg);
        println!("[ablation_fifo] poly_lcg copift, fifo {depth:>2}: {cy} cycles");
    }
    c.bench_function("ablation_fifo_depth", |b| {
        b.iter(|| {
            let cfg = ClusterConfig { offload_fifo_depth: 2, ..ClusterConfig::default() };
            black_box(run_cycles(Kernel::PolyLcg, Variant::Copift, 512, 128, cfg))
        });
    });
}

/// Sequencer ring depth: the documented deviation from Snitch's small FREP
/// buffer (bodies up to 80 instructions need a deeper ring).
fn ablation_seq_depth(c: &mut Criterion) {
    for depth in [80usize, 128] {
        let cfg = ClusterConfig { sequencer_depth: depth, ..ClusterConfig::default() };
        let cy = run_cycles(Kernel::PolyLcg, Variant::Copift, 512, 128, cfg);
        println!("[ablation_seq] poly_lcg copift, ring {depth:>3}: {cy} cycles");
    }
    c.bench_function("ablation_seq_depth", |b| {
        b.iter(|| {
            let cfg = ClusterConfig { sequencer_depth: 80, ..ClusterConfig::default() };
            black_box(run_cycles(Kernel::PolyLcg, Variant::Copift, 512, 128, cfg))
        });
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablation_wb_port, ablation_l0_capacity, ablation_fifo_depth, ablation_seq_depth
}
criterion_main!(ablations);
