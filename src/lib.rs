//! # copift-repro
//!
//! A from-scratch Rust reproduction of *Dual-Issue Execution of Mixed Integer
//! and Floating-Point Workloads on Energy-Efficient In-Order RISC-V Cores*
//! (Colagrande & Benini, DAC 2025) — the **COPIFT** methodology and ISA
//! extensions, evaluated on a cycle-accurate model of the Snitch RISC-V core.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`riscv`] — instruction-set model (RV32IMFD + Snitch + COPIFT extensions)
//! * [`asm`] — typed assembler / program builder
//! * [`sim`] — cycle-accurate Snitch cluster simulator
//! * [`energy`] — activity-based power and energy model
//! * [`verify`] — static program verifier and lint pass over compiled
//!   programs (FREP legality, SSR stream discipline, definite init, memory
//!   bounds, barrier consistency)
//! * [`copift`] — the COPIFT transformation methodology (the paper's core
//!   contribution)
//! * [`kernels`] — the open workload catalog: the six paper workloads plus
//!   the auto-compiled extended suite, all with golden models
//! * [`engine`] — parallel, batched experiment execution with program
//!   caching and structured result sinks (the `sweep` CLI)
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture and
//! the experiment index.
//!
//! # Example
//!
//! Run the paper's `expf` kernel in both baseline and COPIFT form and compare
//! steady-state IPC:
//!
//! ```
//! use copift_repro::kernels::registry::{Kernel, Variant};
//!
//! let kernel = Kernel::Expf;
//! let base = kernel.run(Variant::Baseline, 256, 32).expect("baseline runs");
//! let fast = kernel.run(Variant::Copift, 256, 32).expect("copift runs");
//! assert!(fast.total_cycles < base.total_cycles, "COPIFT must be faster");
//! ```

#![forbid(unsafe_code)]

pub use copift;
pub use snitch_asm as asm;
pub use snitch_energy as energy;
pub use snitch_engine as engine;
pub use snitch_kernels as kernels;
pub use snitch_riscv as riscv;
pub use snitch_sim as sim;
pub use snitch_verify as verify;
