//! Cross-crate integration tests: every cataloged kernel, both variants,
//! validated bit-exactly against the golden models, plus the paper's
//! headline claims as assertions over the paper's Figure 2 suite (the
//! extended-suite claims live in `tests/extended.rs`).

use copift_repro::kernels::registry::{Kernel, Variant};
use copift_repro::sim::config::ClusterConfig;

fn sizes_for(kernel: Kernel) -> (usize, usize) {
    match kernel {
        Kernel::Expf | Kernel::Logf => (256, 32),
        // The tiled GEMM's TCDM footprint grows with n²; run its operating
        // shape.
        Kernel::GemmTiled => (64, 0),
        _ => (256, 64),
    }
}

#[test]
fn all_kernels_validate_bit_exactly() {
    for kernel in Kernel::all() {
        for variant in [Variant::Baseline, Variant::Copift] {
            let (n, block) = sizes_for(kernel);
            let r = kernel
                .run(variant, n, block)
                .unwrap_or_else(|e| panic!("{} {} failed: {e}", kernel.name(), variant.name()));
            assert!(r.total_cycles > 0);
        }
    }
}

#[test]
fn copift_always_beats_baseline() {
    for kernel in Kernel::paper() {
        let (n, block) = sizes_for(kernel);
        let base = kernel.run(Variant::Baseline, n, block).unwrap();
        let fast = kernel.run(Variant::Copift, n, block).unwrap();
        assert!(
            fast.total_cycles < base.total_cycles,
            "{}: copift {} >= base {}",
            kernel.name(),
            fast.total_cycles,
            base.total_cycles
        );
    }
}

#[test]
fn baseline_ipc_below_one_copift_above_one() {
    // Single issue bounds the baseline at IPC 1; dual issue must exceed it
    // in steady state (larger sizes reduce prologue effects).
    for kernel in Kernel::paper() {
        let (n, block) = sizes_for(kernel);
        let base = kernel.run(Variant::Baseline, 2 * n, block).unwrap();
        let fast = kernel.run(Variant::Copift, 2 * n, block).unwrap();
        assert!(base.stats.ipc() <= 1.0, "{} base ipc {}", kernel.name(), base.stats.ipc());
        assert!(fast.stats.ipc() > 1.0, "{} copift ipc {}", kernel.name(), fast.stats.ipc());
        assert!(fast.stats.ipc() <= 2.0, "ipc can never exceed 2");
    }
}

#[test]
fn copift_replays_dominate_fp_issue() {
    // Pseudo dual-issue: most FP instructions must come from the sequencer,
    // not the core's issue slots. Holds for the whole catalog, not just the
    // paper suite: every COPIFT variant is FREP-driven.
    for kernel in Kernel::all() {
        let (n, block) = sizes_for(kernel);
        let fast = kernel.run(Variant::Copift, n, block).unwrap();
        assert!(
            fast.stats.fp_issued_seq > fast.stats.fp_issued_core,
            "{}: seq {} vs core {}",
            kernel.name(),
            fast.stats.fp_issued_seq,
            fast.stats.fp_issued_core
        );
    }
}

#[test]
fn copift_saves_energy_despite_higher_power() {
    // Paper suite only: the FP-only extended `softmax` has no integer
    // thread to dual-issue, so its COPIFT power does not rise.
    for kernel in Kernel::paper() {
        let (n, block) = sizes_for(kernel);
        let base = kernel.run(Variant::Baseline, n, block).unwrap();
        let fast = kernel.run(Variant::Copift, n, block).unwrap();
        assert!(fast.power_mw > base.power_mw, "{}: dual issue should raise power", kernel.name());
        assert!(
            fast.energy_uj < base.energy_uj,
            "{}: dual issue must still save energy",
            kernel.name()
        );
    }
}

#[test]
fn lcg_baselines_suffer_wb_port_hazard() {
    let base = Kernel::PiLcg.run(Variant::Baseline, 256, 0).unwrap();
    assert!(base.stats.stall_wb_port > 0, "LCG multiplies must collide on the WB port");
    let xo = Kernel::PiXoshiro.run(Variant::Baseline, 256, 0).unwrap();
    assert_eq!(xo.stats.stall_wb_port, 0, "xoshiro has no multiplies");
}

#[test]
fn exp_baseline_thrashes_l0_copift_does_not() {
    // Steady-state comparison (differencing removes setup/prologue fetches).
    let b1 = Kernel::Expf.run(Variant::Baseline, 256, 64).unwrap();
    let b2 = Kernel::Expf.run(Variant::Baseline, 512, 64).unwrap();
    let f1 = Kernel::Expf.run(Variant::Copift, 256, 64).unwrap();
    let f2 = Kernel::Expf.run(Variant::Copift, 512, 64).unwrap();
    let db = b2.stats.delta_since(&b1.stats);
    let df = f2.stats.delta_since(&f1.stats);
    let base_miss = db.l0_misses as f64 / (db.l0_misses + db.l0_hits) as f64;
    let fast_miss = df.l0_misses as f64 / (df.l0_misses + df.l0_hits) as f64;
    assert!(
        base_miss > 0.5,
        "the 96-instruction baseline loop must thrash the 64-entry L0 ({base_miss:.2})"
    );
    assert!(fast_miss < 0.4, "the separated integer loop must mostly hit the L0 ({fast_miss:.2})");
    assert!(fast_miss < base_miss / 2.0, "COPIFT must at least halve the miss rate");
}

#[test]
fn logf_copift_uses_issr() {
    let fast = Kernel::Logf.run(Variant::Copift, 256, 32).unwrap();
    assert!(fast.stats.ssr_beats[1] > 0, "SSR1 must stream the indirection table");
    // Two table reads per element.
    assert!(fast.stats.ssr_beats[1] >= 2 * 256);
}

#[test]
fn mc_kernels_have_no_explicit_fp_memory_ops_under_copift() {
    // Steady state: differencing removes the handful of constant loads in
    // the setup code.
    let r1 = Kernel::PolyLcg.run(Variant::Copift, 256, 64).unwrap();
    let r2 = Kernel::PolyLcg.run(Variant::Copift, 512, 64).unwrap();
    let d = r2.stats.delta_since(&r1.stats);
    assert_eq!(d.fp_mem_ops, 0, "all steady-state FP memory traffic must flow through the SSRs");
    assert!(d.tcdm_ssr_accesses > 0);
}

#[test]
fn expf_uses_dma_mc_does_not() {
    let exp = Kernel::Expf.run(Variant::Baseline, 256, 32).unwrap();
    assert!(exp.stats.dma_beats > 0, "exp streams x/y via DMA");
    let mc = Kernel::PiLcg.run(Variant::Baseline, 256, 0).unwrap();
    assert_eq!(mc.stats.dma_beats, 0, "the Monte Carlo kernels leave the DMA idle");
    // The paper's observation: the idle DMA is part of why MC base power is
    // lower than exp/log base power.
    assert!(mc.power_mw < exp.power_mw);
}

#[test]
fn two_wb_ports_remove_lcg_stalls() {
    let cfg = ClusterConfig { int_wb_ports: 2, ..ClusterConfig::default() };
    let two = Kernel::PiLcg.run_with(Variant::Baseline, 256, 0, cfg).unwrap();
    assert_eq!(two.stats.stall_wb_port, 0);
    let one = Kernel::PiLcg.run(Variant::Baseline, 256, 0).unwrap();
    assert!(two.total_cycles < one.total_cycles);
}

#[test]
fn fig3_trend_ipc_rises_with_problem_size() {
    let small = Kernel::PolyLcg.run(Variant::Copift, 768, 96).unwrap();
    let large = Kernel::PolyLcg.run(Variant::Copift, 6144, 96).unwrap();
    assert!(large.stats.ipc() > small.stats.ipc());
}
