//! Extended-suite integration tests: the open registry's catalog contract
//! and the auto-compiled kernels' (`sigmoid`, `dot_lcg`, `softmax`)
//! validation and performance claims.

use copift_repro::kernels::registry::{Kernel, Variant};

fn extended_kernels() -> [Kernel; 3] {
    [Kernel::Sigmoid, Kernel::DotLcg, Kernel::Softmax]
}

#[test]
fn catalog_lists_paper_then_extended_kernels() {
    let all = Kernel::all();
    assert!(all.len() >= 9, "six paper kernels plus three extended");
    let paper = Kernel::paper();
    assert_eq!(paper.len(), 6);
    for kernel in extended_kernels() {
        assert!(all.contains(&kernel));
        assert!(!paper.contains(&kernel), "{} is not a paper kernel", kernel.name());
        assert!(Kernel::extended().contains(&kernel));
    }
}

#[test]
fn every_cataloged_name_round_trips_and_unknowns_are_rejected() {
    for kernel in Kernel::all() {
        assert_eq!(Kernel::from_name(kernel.name()), Some(kernel));
        assert!(!kernel.description().is_empty(), "{} lacks a description", kernel.name());
    }
    for bogus in ["", "exp ", "sigmoid2", "EXP", "softmax\n"] {
        assert_eq!(Kernel::from_name(bogus), None, "`{bogus}` must not resolve");
    }
}

#[test]
fn extended_kernels_validate_bit_exactly_across_configs() {
    for kernel in extended_kernels() {
        for (n, block) in [(64, 16), (256, 64), (512, 128), (768, 96)] {
            for variant in Variant::all() {
                let r = kernel.run(variant, n, block).unwrap_or_else(|e| {
                    panic!("{} {} n={n} b={block} failed: {e}", kernel.name(), variant.name())
                });
                assert!(r.total_cycles > 0);
            }
        }
    }
}

#[test]
fn extended_copift_beats_baseline() {
    for kernel in extended_kernels() {
        let (n, block) = (1024, 128);
        let base = kernel.run(Variant::Baseline, n, block).unwrap();
        let fast = kernel.run(Variant::Copift, n, block).unwrap();
        assert!(
            fast.total_cycles < base.total_cycles,
            "{}: copift {} >= base {}",
            kernel.name(),
            fast.total_cycles,
            base.total_cycles
        );
        assert!(fast.energy_uj < base.energy_uj, "{}: copift must also save energy", kernel.name());
    }
}

#[test]
fn mixed_extended_kernels_dual_issue_above_ipc_one() {
    // The two kernels with an integer thread must exceed the single-issue
    // bound; FP-only softmax cannot, but must still raise IPC over its
    // baseline (fewer issue slots for the same arithmetic).
    for kernel in [Kernel::Sigmoid, Kernel::DotLcg] {
        let fast = kernel.run(Variant::Copift, 2048, 128).unwrap();
        assert!(
            fast.stats.ipc() > 1.0,
            "{} copift ipc {} must exceed single issue",
            kernel.name(),
            fast.stats.ipc()
        );
    }
    let base = Kernel::Softmax.run(Variant::Baseline, 2048, 128).unwrap();
    let fast = Kernel::Softmax.run(Variant::Copift, 2048, 128).unwrap();
    assert!(base.stats.ipc() <= 1.0, "softmax baseline is single-issue bound");
    assert!(fast.stats.ipc() > base.stats.ipc());
}

#[test]
fn auto_compiled_copift_uses_custom1_extensions_for_mixed_bodies() {
    for kernel in [Kernel::Sigmoid, Kernel::DotLcg] {
        let program = kernel.build(Variant::Copift, 128, 32);
        let n_ext = program.text().iter().filter(|i| i.is_copift_ext()).count();
        assert!(n_ext > 0, "{} copift must use copift.fcvt", kernel.name());
        let base = kernel.build(Variant::Baseline, 128, 32);
        assert_eq!(base.text().iter().filter(|i| i.is_copift_ext()).count(), 0);
    }
}

#[test]
fn softmax_partial_sum_chains_expose_the_fpu_latency() {
    // Shrinking the FMA/add latency must speed softmax COPIFT up: the
    // partial-sum folds sit on the critical path (the cross-iteration
    // dependency the kernel exists to stress).
    use copift_repro::sim::config::ClusterConfig;
    let slow = Kernel::Softmax.run(Variant::Copift, 512, 64).unwrap();
    let cfg = ClusterConfig { fpu_lat_muladd: 1, ..ClusterConfig::default() };
    let fast = Kernel::Softmax.run_with(Variant::Copift, 512, 64, cfg).unwrap();
    assert!(
        fast.total_cycles < slow.total_cycles,
        "latency 1 {} must beat latency 3 {}",
        fast.total_cycles,
        slow.total_cycles
    );
}
