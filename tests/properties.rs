//! Property-style integration tests over kernel configurations and the
//! analytical estimators, driven by deterministic parameter grids (no
//! external property-testing dependency).

use copift_repro::copift::estimate::{s_double_prime, thread_imbalance, MixCounts};
use copift_repro::kernels::registry::{Kernel, Variant};

/// Any legal (n, block) configuration of the Monte Carlo kernels validates
/// bit-exactly in both variants.
#[test]
fn mc_validates_for_any_legal_config() {
    for kernel in &Kernel::all()[..4] {
        for (blocks, block_batches) in [(2, 1), (3, 2), (5, 4), (4, 3)] {
            let block = block_batches * 8;
            let n = blocks * block;
            kernel.run(Variant::Baseline, n, block).expect("baseline validates");
            kernel.run(Variant::Copift, n, block).expect("copift validates");
        }
    }
}

/// expf validates for any legal pipeline depth >= 4 blocks.
#[test]
fn expf_validates_for_any_legal_config() {
    for (blocks, block_quads) in [(4, 2), (5, 3), (7, 8), (6, 5)] {
        let block = block_quads * 4;
        let n = blocks * block;
        Kernel::Expf.run(Variant::Baseline, n, block).expect("baseline validates");
        Kernel::Expf.run(Variant::Copift, n, block).expect("copift validates");
    }
}

/// logf validates for any legal double-buffered configuration.
#[test]
fn logf_validates_for_any_legal_config() {
    for (blocks, block_quads) in [(2, 1), (3, 4), (6, 8), (5, 2)] {
        let block = block_quads * 4;
        let n = blocks * block;
        Kernel::Logf.run(Variant::Baseline, n, block).expect("baseline validates");
        Kernel::Logf.run(Variant::Copift, n, block).expect("copift validates");
    }
}

/// Eq. 3's identity holds for every mix: (a+b)/max = 1 + min/max.
#[test]
fn estimator_identity() {
    // Deterministic coverage of small, large and skewed mixes.
    let samples: Vec<(u64, u64)> = (1..=50)
        .flat_map(|i| [(i, 51 - i), (i * 97 % 9973 + 1, i * 193 % 9973 + 1), (1, i * i)])
        .collect();
    for (n_int, n_fp) in samples {
        let m = MixCounts { n_int, n_fp };
        let direct = m.total() as f64 / m.critical() as f64;
        assert!((direct - s_double_prime(m)).abs() < 1e-12);
        assert!(thread_imbalance(m) <= 1.0);
        assert!(s_double_prime(m) <= 2.0, "speedup bound of dual issue");
    }
}
