//! Property-style integration tests over kernel configurations and the
//! analytical estimators, driven by deterministic parameter grids (no
//! external property-testing dependency).

use copift_repro::copift::estimate::{s_double_prime, thread_imbalance, MixCounts};
use copift_repro::kernels::registry::{Kernel, Variant};
use copift_repro::riscv::ops::{AluImmOp, AluOp};

/// Any legal (n, block) configuration of the Monte Carlo kernels validates
/// bit-exactly in both variants.
#[test]
fn mc_validates_for_any_legal_config() {
    for kernel in &Kernel::all()[..4] {
        for (blocks, block_batches) in [(2, 1), (3, 2), (5, 4), (4, 3)] {
            let block = block_batches * 8;
            let n = blocks * block;
            kernel.run(Variant::Baseline, n, block).expect("baseline validates");
            kernel.run(Variant::Copift, n, block).expect("copift validates");
        }
    }
}

/// expf validates for any legal pipeline depth >= 4 blocks.
#[test]
fn expf_validates_for_any_legal_config() {
    for (blocks, block_quads) in [(4, 2), (5, 3), (7, 8), (6, 5)] {
        let block = block_quads * 4;
        let n = blocks * block;
        Kernel::Expf.run(Variant::Baseline, n, block).expect("baseline validates");
        Kernel::Expf.run(Variant::Copift, n, block).expect("copift validates");
    }
}

/// logf validates for any legal double-buffered configuration.
#[test]
fn logf_validates_for_any_legal_config() {
    for (blocks, block_quads) in [(2, 1), (3, 4), (6, 8), (5, 2)] {
        let block = block_quads * 4;
        let n = blocks * block;
        Kernel::Logf.run(Variant::Baseline, n, block).expect("baseline validates");
        Kernel::Logf.run(Variant::Copift, n, block).expect("copift validates");
    }
}

/// Boundary-heavy operand grid for the integer-op properties.
fn interesting_u32() -> Vec<u32> {
    vec![
        0,
        1,
        2,
        3,
        31,
        32,
        0x7fff_ffff, // i32::MAX
        0x8000_0000, // i32::MIN
        0x8000_0001,
        0xffff_fffe,
        0xffff_ffff, // -1
        0x1234_5678,
        0xdead_beef,
    ]
}

/// RV32 shifts use only the low five bits of the shift amount, for both the
/// register (`sll`/`srl`/`sra`) and immediate (`slli`/`srli`/`srai`) forms.
#[test]
fn shift_amounts_mask_to_five_bits() {
    let amounts = [0u32, 1, 5, 31, 32, 33, 63, 64, 255, 0x8000_001f, u32::MAX];
    for &v in &interesting_u32() {
        for &sh in &amounts {
            let m = sh & 31;
            assert_eq!(AluOp::Sll.eval(v, sh), v << m, "sll {v:#x} by {sh}");
            assert_eq!(AluOp::Srl.eval(v, sh), v >> m, "srl {v:#x} by {sh}");
            assert_eq!(AluOp::Sra.eval(v, sh), ((v as i32) >> m) as u32, "sra {v:#x} by {sh}");
            // Immediate forms see the same masking of their imm field.
            assert_eq!(AluImmOp::Slli.eval(v, sh as i32), v << m);
            assert_eq!(AluImmOp::Srli.eval(v, sh as i32), v >> m);
            assert_eq!(AluImmOp::Srai.eval(v, sh as i32), ((v as i32) >> m) as u32);
        }
    }
}

/// RISC-V division corner cases: divide-by-zero yields all-ones / the
/// dividend (never a trap), and `i32::MIN / -1` wraps. Everything else must
/// satisfy the Euclidean reconstruction `div * b + rem == a`.
#[test]
fn div_rem_zero_overflow_and_reconstruction() {
    for &a in &interesting_u32() {
        // Divide by zero: mandated results, no trap.
        assert_eq!(AluOp::Div.eval(a, 0), u32::MAX, "div {a:#x} / 0");
        assert_eq!(AluOp::Divu.eval(a, 0), u32::MAX);
        assert_eq!(AluOp::Rem.eval(a, 0), a, "rem {a:#x} % 0 keeps the dividend");
        assert_eq!(AluOp::Remu.eval(a, 0), a);
        for &b in &interesting_u32() {
            if b == 0 {
                continue;
            }
            if a as i32 == i32::MIN && b as i32 == -1 {
                // Signed overflow wraps: quotient i32::MIN, remainder 0.
                assert_eq!(AluOp::Div.eval(a, b), i32::MIN as u32);
                assert_eq!(AluOp::Rem.eval(a, b), 0);
            } else {
                let (q, r) = (AluOp::Div.eval(a, b) as i32, AluOp::Rem.eval(a, b) as i32);
                assert_eq!(
                    (q as i64) * (b as i32 as i64) + i64::from(r),
                    i64::from(a as i32),
                    "signed reconstruction for {a:#x} / {b:#x}"
                );
                assert!(r == 0 || (r < 0) == ((a as i32) < 0), "remainder sign follows dividend");
            }
            let (q, r) = (AluOp::Divu.eval(a, b), AluOp::Remu.eval(a, b));
            assert_eq!(u64::from(q) * u64::from(b) + u64::from(r), u64::from(a));
            assert!(r < b);
        }
    }
}

/// `slt`/`sltu` and their immediate forms at the sign boundaries: the
/// signed/unsigned split flips exactly at `i32::MIN`, and the immediate is
/// sign-extended *then* compared unsigned for `sltiu` (so `sltiu x, -1`
/// means "less than 0xffff_ffff").
#[test]
fn slt_sign_boundaries() {
    for &a in &interesting_u32() {
        for &b in &interesting_u32() {
            assert_eq!(AluOp::Slt.eval(a, b), u32::from((a as i32) < (b as i32)));
            assert_eq!(AluOp::Sltu.eval(a, b), u32::from(a < b));
        }
        for imm in [-2048i32, -1, 0, 1, 2047] {
            assert_eq!(AluImmOp::Slti.eval(a, imm), u32::from((a as i32) < imm));
            assert_eq!(AluImmOp::Sltiu.eval(a, imm), u32::from(a < imm as u32));
        }
    }
    // The canonical flip: -1 is smaller than 0 signed, larger unsigned.
    assert_eq!(AluOp::Slt.eval(u32::MAX, 0), 1);
    assert_eq!(AluOp::Sltu.eval(u32::MAX, 0), 0);
    assert_eq!(AluImmOp::Sltiu.eval(0, -1), 1, "sltiu against sign-extended -1");
}

/// Any legal (n, block, cores) configuration of the data-parallel Monte
/// Carlo kernels validates bit-exactly against the single-core golden model
/// in both variants.
#[test]
fn parallel_mc_validates_for_any_legal_config() {
    use copift_repro::sim::config::ClusterConfig;
    for kernel in [Kernel::PiLcgPar, Kernel::PiXoshiroPar] {
        for (cores, blocks_per_hart, block_batches) in [(2, 2, 2), (4, 3, 1), (8, 2, 1), (5, 2, 3)]
        {
            let block = block_batches * 8;
            let n = cores * blocks_per_hart * block;
            let cfg = ClusterConfig { cores, ..ClusterConfig::default() };
            kernel
                .run_with(Variant::Baseline, n, 0, cfg.clone())
                .unwrap_or_else(|e| panic!("{} base x{cores} n={n}: {e}", kernel.name()));
            kernel
                .run_with(Variant::Copift, n, block, cfg)
                .unwrap_or_else(|e| panic!("{} copift x{cores} n={n}: {e}", kernel.name()));
        }
    }
}

/// Eq. 3's identity holds for every mix: (a+b)/max = 1 + min/max.
#[test]
fn estimator_identity() {
    // Deterministic coverage of small, large and skewed mixes.
    let samples: Vec<(u64, u64)> = (1..=50)
        .flat_map(|i| [(i, 51 - i), (i * 97 % 9973 + 1, i * 193 % 9973 + 1), (1, i * i)])
        .collect();
    for (n_int, n_fp) in samples {
        let m = MixCounts { n_int, n_fp };
        let direct = m.total() as f64 / m.critical() as f64;
        assert!((direct - s_double_prime(m)).abs() < 1e-12);
        assert!(thread_imbalance(m) <= 1.0);
        assert!(s_double_prime(m) <= 2.0, "speedup bound of dual issue");
    }
}
