//! Property-based integration tests over kernel configurations and the
//! analytical estimators.

use proptest::prelude::*;

use copift_repro::copift::estimate::{s_double_prime, thread_imbalance, MixCounts};
use copift_repro::kernels::registry::{Kernel, Variant};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any legal (n, block) configuration of the Monte Carlo kernels
    /// validates bit-exactly in both variants.
    #[test]
    fn mc_validates_for_any_legal_config(
        blocks in 2usize..6,
        block_batches in 1usize..5,
        kernel_idx in 0usize..4,
    ) {
        let kernel = Kernel::all()[kernel_idx];
        let block = block_batches * 8;
        let n = blocks * block;
        kernel.run(Variant::Baseline, n, block).expect("baseline validates");
        kernel.run(Variant::Copift, n, block).expect("copift validates");
    }

    /// expf validates for any legal pipeline depth >= 4 blocks.
    #[test]
    fn expf_validates_for_any_legal_config(
        blocks in 4usize..8,
        block_quads in 2usize..9,
    ) {
        let block = block_quads * 4;
        let n = blocks * block;
        Kernel::Expf.run(Variant::Baseline, n, block).expect("baseline validates");
        Kernel::Expf.run(Variant::Copift, n, block).expect("copift validates");
    }

    /// logf validates for any legal double-buffered configuration.
    #[test]
    fn logf_validates_for_any_legal_config(
        blocks in 2usize..7,
        block_quads in 1usize..9,
    ) {
        let block = block_quads * 4;
        let n = blocks * block;
        Kernel::Logf.run(Variant::Baseline, n, block).expect("baseline validates");
        Kernel::Logf.run(Variant::Copift, n, block).expect("copift validates");
    }

    /// Eq. 3's identity holds for every mix: (a+b)/max = 1 + min/max.
    #[test]
    fn estimator_identity(n_int in 1u64..10_000, n_fp in 1u64..10_000) {
        let m = MixCounts { n_int, n_fp };
        let direct = m.total() as f64 / m.critical() as f64;
        prop_assert!((direct - s_double_prime(m)).abs() < 1e-12);
        prop_assert!(thread_imbalance(m) <= 1.0);
        prop_assert!(s_double_prime(m) <= 2.0, "speedup bound of dual issue");
    }
}
