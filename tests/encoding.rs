//! Whole-program encode/decode coverage: every instruction of every kernel
//! program round-trips through its 32-bit binary form, and the disassembly
//! listing is well-formed.

use copift_repro::kernels::registry::{Kernel, Variant};
use copift_repro::riscv::inst::Inst;

#[test]
fn every_kernel_program_roundtrips_through_binary() {
    for kernel in Kernel::all() {
        for variant in [Variant::Baseline, Variant::Copift] {
            let (n, block) = match kernel {
                Kernel::Expf | Kernel::Logf => (128, 32),
                // The tiled GEMM's TCDM footprint grows with n²; use its
                // smoke shape.
                Kernel::GemmTiled => (32, 0),
                _ => (128, 64),
            };
            let program = kernel.build(variant, n, block);
            for (i, inst) in program.text().iter().enumerate() {
                let word = inst.encode();
                let back = Inst::decode(word).unwrap_or_else(|e| {
                    panic!(
                        "{} {}: [{i}] `{inst}` failed to decode: {e}",
                        kernel.name(),
                        variant.name()
                    )
                });
                assert_eq!(
                    back,
                    *inst,
                    "{} {}: [{i}] {word:#010x} round-trip",
                    kernel.name(),
                    variant.name()
                );
            }
        }
    }
}

#[test]
fn kernel_disassembly_is_well_formed() {
    let program = Kernel::Expf.build(Variant::Copift, 128, 32);
    let listing = program.disassemble();
    assert!(listing.contains("frep.o"));
    assert!(listing.contains("scfgwi"));
    assert!(listing.contains("fmadd.d"));
    // One line per instruction plus label lines.
    assert!(listing.lines().count() >= program.text().len());
}

#[test]
fn copift_programs_use_custom1_extensions() {
    for kernel in [Kernel::PiLcg, Kernel::PolyXoshiro, Kernel::Logf] {
        let (n, block) = if kernel == Kernel::Logf { (128, 32) } else { (128, 64) };
        let program = kernel.build(Variant::Copift, n, block);
        let n_copift = program.text().iter().filter(|i| i.is_copift_ext()).count();
        assert!(n_copift > 0, "{} must use the custom-1 extensions", kernel.name());
        // And the baseline must not.
        let base = kernel.build(Variant::Baseline, n, block);
        assert_eq!(base.text().iter().filter(|i| i.is_copift_ext()).count(), 0);
    }
}
